// Package mpk models Intel Memory Protection Keys (MPK) as described in
// §2.3 of the paper: a 4-bit protection key in each page-table entry, a
// per-core PKRU register holding 16 two-bit permission pairs, and the
// non-privileged WRPKRU/RDPKRU instructions that manipulate it.
//
// The model reproduces the architectural semantics that uProcess depends on:
//
//   - PKRU is checked on data accesses (loads and stores) only; instruction
//     fetches are never subject to PKRU. This is what makes the paper's
//     executable-only shared text region workable (§4.1).
//   - MPK is supplementary to page permission bits: an access must pass both
//     the PTE permission check and the PKRU check.
//   - WRPKRU is cheap (11–260 cycles) and unprivileged, which is both the
//     performance opportunity and the attack surface the call gate closes.
package mpk

import "fmt"

// PKey is a 4-bit protection key (0–15).
type PKey uint8

// NumKeys is the number of architectural protection keys.
const NumKeys = 16

// PKRU is the per-core protection-key rights register. Each key k owns two
// bits: bit 2k is AD (access disable) and bit 2k+1 is WD (write disable).
type PKRU uint32

const (
	adBit PKRU = 1 // access disable
	wdBit PKRU = 2 // write disable
)

// AllowNoneValue has every key's AD bit set: no data access to any key'd
// region. Key 0 is conventionally left accessible by hardware reset values,
// but uProcess threads start from an explicit PKRU so we expose the strict
// constant too.
const AllowNoneValue PKRU = 0x55555555

// AllowAllValue grants read+write for every key.
const AllowAllValue PKRU = 0

// CanRead reports whether the register permits data reads of pages tagged
// with key k.
func (p PKRU) CanRead(k PKey) bool {
	return p>>(2*uint(k))&adBit == 0
}

// CanWrite reports whether the register permits data writes of pages tagged
// with key k.
func (p PKRU) CanWrite(k PKey) bool {
	bits := p >> (2 * uint(k))
	return bits&adBit == 0 && bits&wdBit == 0
}

// WithAccess returns a copy of p with key k's permissions replaced.
// read=false implies no access at all (AD set); write=false with read=true
// gives read-only (WD set).
func (p PKRU) WithAccess(k PKey, read, write bool) PKRU {
	shift := 2 * uint(k)
	p &^= (adBit | wdBit) << shift
	if !read {
		p |= adBit << shift
		return p
	}
	if !write {
		p |= wdBit << shift
	}
	return p
}

// Key returns the (read, write) permission pair for key k.
func (p PKRU) Key(k PKey) (read, write bool) {
	return p.CanRead(k), p.CanWrite(k)
}

func (p PKRU) String() string {
	s := make([]byte, 0, NumKeys)
	for k := PKey(0); k < NumKeys; k++ {
		switch {
		case p.CanWrite(k):
			s = append(s, 'W')
		case p.CanRead(k):
			s = append(s, 'R')
		default:
			s = append(s, '-')
		}
	}
	return string(s)
}

// AccessKind distinguishes the kinds of memory access for permission checks.
type AccessKind uint8

const (
	AccessRead AccessKind = iota
	AccessWrite
	AccessExec
)

func (k AccessKind) String() string {
	switch k {
	case AccessRead:
		return "read"
	case AccessWrite:
		return "write"
	case AccessExec:
		return "exec"
	default:
		return fmt.Sprintf("AccessKind(%d)", uint8(k))
	}
}

// Check applies the architectural PKRU check for an access of the given
// kind against a page tagged with key k. Instruction fetches always pass:
// MPK does not mediate execution. This sits on the simulator's per-access
// hot path, so it is written to inline: a mask test instead of a jump
// table (AccessRead needs AD clear, AccessWrite needs AD and WD clear).
func (p PKRU) Check(k PKey, kind AccessKind) bool {
	if kind > AccessWrite {
		return kind == AccessExec
	}
	mask := adBit
	if kind == AccessWrite {
		mask = adBit | wdBit
	}
	return p>>(2*uint(k))&mask == 0
}

// Allocator hands out protection keys the way the kernel's pkey_alloc()
// does. Key 0 is reserved (the paper reserves it so unmanaged kProcess
// memory outside SMAS keeps working, §4.1 footnote 2).
type Allocator struct {
	used [NumKeys]bool
	// OnAlloc and OnFree, when non-nil, observe successful allocations
	// and frees — key-lifecycle probes for the observability layer
	// (libmpk's key-virtualisation pressure is visible exactly here).
	OnAlloc func(k PKey)
	OnFree  func(k PKey)
}

// NewAllocator returns an allocator with key 0 already reserved.
func NewAllocator() *Allocator {
	a := &Allocator{}
	a.used[0] = true
	return a
}

// Alloc returns the lowest free key, mirroring pkey_alloc(). Of the
// NumKeys (16) hardware keys, key 0 is reserved at construction, so
// exactly keys 1..15 are allocatable; Alloc fails when all 15 are in
// use. (Callers with further reservations — SMAS holds back the runtime
// and pipe keys — see correspondingly fewer.)
func (a *Allocator) Alloc() (PKey, error) {
	for k := PKey(1); k < NumKeys; k++ {
		if !a.used[k] {
			a.used[k] = true
			if a.OnAlloc != nil {
				a.OnAlloc(k)
			}
			return k, nil
		}
	}
	return 0, fmt.Errorf("mpk: no free protection keys")
}

// Free releases a key, mirroring pkey_free(). Freeing key 0 or an
// unallocated key is an error.
func (a *Allocator) Free(k PKey) error {
	if k == 0 {
		return fmt.Errorf("mpk: key 0 is reserved")
	}
	if k >= NumKeys {
		return fmt.Errorf("mpk: key %d out of range", k)
	}
	if !a.used[k] {
		return fmt.Errorf("mpk: key %d is not allocated", k)
	}
	a.used[k] = false
	if a.OnFree != nil {
		a.OnFree(k)
	}
	return nil
}

// InUse reports whether key k is currently allocated.
func (a *Allocator) InUse(k PKey) bool {
	return k < NumKeys && a.used[k]
}

// Available returns the number of keys that can still be allocated.
func (a *Allocator) Available() int {
	n := 0
	for k := PKey(1); k < NumKeys; k++ {
		if !a.used[k] {
			n++
		}
	}
	return n
}
