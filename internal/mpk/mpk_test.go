package mpk

import (
	"testing"
	"testing/quick"
)

func TestPKRUDefaults(t *testing.T) {
	if !AllowAllValue.CanRead(3) || !AllowAllValue.CanWrite(15) {
		t.Fatal("AllowAll should permit everything")
	}
	for k := PKey(0); k < NumKeys; k++ {
		if AllowNoneValue.CanRead(k) || AllowNoneValue.CanWrite(k) {
			t.Fatalf("AllowNone permits key %d", k)
		}
	}
}

func TestWithAccess(t *testing.T) {
	p := AllowNoneValue
	p = p.WithAccess(5, true, true)
	if !p.CanRead(5) || !p.CanWrite(5) {
		t.Fatal("rw grant failed")
	}
	if p.CanRead(4) || p.CanRead(6) {
		t.Fatal("grant leaked to neighbouring keys")
	}
	p = p.WithAccess(5, true, false)
	if !p.CanRead(5) || p.CanWrite(5) {
		t.Fatal("read-only downgrade failed")
	}
	p = p.WithAccess(5, false, true) // read=false dominates
	if p.CanRead(5) || p.CanWrite(5) {
		t.Fatal("revoke failed")
	}
}

func TestCheckExecAlwaysPasses(t *testing.T) {
	// MPK does not mediate instruction fetch; the paper's shared
	// executable-only text region depends on this.
	for k := PKey(0); k < NumKeys; k++ {
		if !AllowNoneValue.Check(k, AccessExec) {
			t.Fatalf("exec check failed for key %d", k)
		}
	}
	if AllowNoneValue.Check(1, AccessRead) || AllowNoneValue.Check(1, AccessWrite) {
		t.Fatal("AllowNone permitted a data access")
	}
}

func TestPKRUString(t *testing.T) {
	p := AllowNoneValue.WithAccess(0, true, true).WithAccess(1, true, false)
	s := p.String()
	if s[0] != 'W' || s[1] != 'R' || s[2] != '-' {
		t.Fatalf("String() = %q", s)
	}
}

func TestAccessKindString(t *testing.T) {
	if AccessRead.String() != "read" || AccessWrite.String() != "write" || AccessExec.String() != "exec" {
		t.Fatal("AccessKind strings wrong")
	}
	if AccessKind(99).String() == "" {
		t.Fatal("unknown kind should still format")
	}
}

func TestAllocator(t *testing.T) {
	a := NewAllocator()
	if !a.InUse(0) {
		t.Fatal("key 0 must start reserved")
	}
	if a.Available() != 15 {
		t.Fatalf("available = %d, want 15", a.Available())
	}
	seen := map[PKey]bool{}
	for i := 0; i < 15; i++ {
		k, err := a.Alloc()
		if err != nil {
			t.Fatalf("alloc %d: %v", i, err)
		}
		if k == 0 || seen[k] {
			t.Fatalf("bad key %d", k)
		}
		seen[k] = true
	}
	if _, err := a.Alloc(); err == nil {
		t.Fatal("16th alloc should fail")
	}
	if err := a.Free(5); err != nil {
		t.Fatal(err)
	}
	if k, err := a.Alloc(); err != nil || k != 5 {
		t.Fatalf("realloc got %d, %v", k, err)
	}
	if err := a.Free(0); err == nil {
		t.Fatal("freeing key 0 must fail")
	}
	if err := a.Free(20); err == nil {
		t.Fatal("freeing out-of-range key must fail")
	}
	a2 := NewAllocator()
	if err := a2.Free(3); err == nil {
		t.Fatal("freeing unallocated key must fail")
	}
}

func TestWithAccessRoundTripProperty(t *testing.T) {
	// Property: WithAccess followed by Key returns exactly what was set,
	// and never disturbs other keys.
	f := func(init uint32, kRaw uint8, read, write bool) bool {
		p := PKRU(init)
		k := PKey(kRaw % NumKeys)
		q := p.WithAccess(k, read, write)
		gr, gw := q.Key(k)
		wantR := read
		wantW := read && write
		if gr != wantR || gw != wantW {
			return false
		}
		for other := PKey(0); other < NumKeys; other++ {
			if other == k {
				continue
			}
			or1, ow1 := p.Key(other)
			or2, ow2 := q.Key(other)
			if or1 != or2 || ow1 != ow2 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWriteImpliesReadProperty(t *testing.T) {
	// Architectural invariant: a key that is writable is also readable
	// (WD without AD clear is meaningless).
	f := func(raw uint32, kRaw uint8) bool {
		p := PKRU(raw)
		k := PKey(kRaw % NumKeys)
		if p.CanWrite(k) && !p.CanRead(k) {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
