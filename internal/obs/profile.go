package obs

import (
	"fmt"
	"sort"
	"strings"

	"vessel/internal/sim"
)

// Key addresses one profiler bucket: which core, which occupant (app or
// uProcess name), which category.
type Key struct {
	Core int
	Name string
	Cat  Category
}

// Profiler charges simulated cycles (as virtual nanoseconds) to
// (core, occupant, category) buckets. The scheduling accountant feeds it
// window-clipped activity durations, so the activity buckets partition the
// measured interval exactly — the conservation law the conformance oracle
// checks. Charging is allocation-free after a bucket's first touch.
type Profiler struct {
	buckets map[Key]sim.Duration
}

func (p *Profiler) charge(core int, name string, cat Category, d sim.Duration) {
	if p.buckets == nil {
		p.buckets = make(map[Key]sim.Duration)
	}
	p.buckets[Key{Core: core, Name: name, Cat: cat}] += d
}

// Get returns one bucket's accumulated time.
func (p *Profiler) Get(core int, name string, cat Category) sim.Duration {
	if p == nil {
		return 0
	}
	return p.buckets[Key{Core: core, Name: name, Cat: cat}]
}

// CategoryTotals sums buckets per category.
func (p *Profiler) CategoryTotals() [NumCategories]sim.Duration {
	var out [NumCategories]sim.Duration
	if p == nil {
		return out
	}
	for k, v := range p.buckets {
		out[k.Cat] += v
	}
	return out
}

// ActivityTotal sums the five partition categories — the quantity that must
// equal cores × measured duration (and the result's cycle-breakdown total).
func (p *Profiler) ActivityTotal() sim.Duration {
	totals := p.CategoryTotals()
	var sum sim.Duration
	for c := Category(0); c <= CatSwitch; c++ {
		sum += totals[c]
	}
	return sum
}

// sortedKeys returns bucket keys in the canonical (Core, Name, Cat) order.
func (p *Profiler) sortedKeys() []Key {
	if p == nil {
		return nil
	}
	keys := make([]Key, 0, len(p.buckets))
	for k := range p.buckets {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.Core != b.Core {
			return a.Core < b.Core
		}
		if a.Name != b.Name {
			return a.Name < b.Name
		}
		return a.Cat < b.Cat
	})
	return keys
}

func displayName(name string) string {
	if name == "" {
		return "-"
	}
	return name
}

// Table renders the top-n buckets by charged time as a text table, with a
// per-category footer. n ≤ 0 renders every bucket. Ordering is charged time
// descending, ties broken by the canonical key order, so the rendering is
// deterministic.
func (p *Profiler) Table(n int) string {
	keys := p.sortedKeys()
	sort.SliceStable(keys, func(i, j int) bool {
		return p.buckets[keys[i]] > p.buckets[keys[j]]
	})
	total := p.ActivityTotal()
	var b strings.Builder
	fmt.Fprintf(&b, "cycle attribution (total %v over activity categories)\n", total)
	fmt.Fprintf(&b, "%-5s %-16s %-9s %14s %7s\n", "core", "occupant", "category", "ns", "share")
	shown := 0
	for _, k := range keys {
		if n > 0 && shown >= n {
			fmt.Fprintf(&b, "... %d more buckets\n", len(keys)-shown)
			break
		}
		v := p.buckets[k]
		share := 0.0
		if total > 0 && k.Cat.Activity() {
			share = float64(v) / float64(total)
		}
		fmt.Fprintf(&b, "%-5d %-16s %-9s %14d %6.2f%%\n",
			k.Core, displayName(k.Name), k.Cat, int64(v), 100*share)
		shown++
	}
	totals := p.CategoryTotals()
	b.WriteString("per-category totals:")
	for c := Category(0); c < NumCategories; c++ {
		if totals[c] != 0 {
			fmt.Fprintf(&b, " %s=%d", c, int64(totals[c]))
		}
	}
	b.WriteByte('\n')
	return b.String()
}

// Collapsed renders the buckets in collapsed-stack form — one
// "core;occupant;category count" line per bucket, sorted by the canonical
// key order — directly consumable by flamegraph.pl and speedscope.
func (p *Profiler) Collapsed() string {
	var b strings.Builder
	for _, k := range p.sortedKeys() {
		fmt.Fprintf(&b, "core%d;%s;%s %d\n", k.Core, displayName(k.Name), k.Cat, int64(p.buckets[k]))
	}
	return b.String()
}

// FromSpans builds a profiler by charging every span's full (unclipped)
// duration — how cmd/traceconv derives collapsed stacks and attribution
// tables from a recorded timeline after the fact.
func FromSpans(spans []Span) *Profiler {
	p := &Profiler{}
	for _, s := range spans {
		if d := s.Duration(); d > 0 {
			p.charge(s.Core, s.Name, s.Cat, d)
		}
	}
	return p
}
