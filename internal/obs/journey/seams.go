package journey

import (
	"fmt"

	"vessel/internal/dataplane"
	"vessel/internal/sim"
)

// TraceNVMe chains journey tracing onto a device's submit→completion
// seam: every accepted command mints a device-command journey (name
// "<name>.<op>") that lives entirely in SegData and finishes when the
// completion posts to the CQ. Existing hooks are preserved, matching
// the chaining discipline of uproc.AttachObs. Commands cancelled by
// CancelInflight never complete; their journeys stay unfinished — the
// analyzer reports them, the conservation oracle skips them.
func TraceNVMe(t *Tracer, d *dataplane.NVMe, name string) {
	if t == nil || d == nil {
		return
	}
	inflight := make(map[uint64]*Journey)
	prevSubmit, prevComplete := d.OnSubmit, d.OnComplete
	d.OnSubmit = func(c dataplane.Cmd, at sim.Time) {
		if prevSubmit != nil {
			prevSubmit(c, at)
		}
		j := t.Mint(fmt.Sprintf("%s.%s", name, c.Op), at)
		j.To(SegData, at)
		j.Annotate(fmt.Sprintf("submit lba=%d tag=%d", c.LBA, c.Tag), at)
		inflight[c.Tag] = j
	}
	d.OnComplete = func(tag uint64, submitted, completed sim.Time) {
		if prevComplete != nil {
			prevComplete(tag, submitted, completed)
		}
		if j, ok := inflight[tag]; ok {
			delete(inflight, tag)
			j.Finish(completed)
		}
	}
}
