package journey

import (
	"bytes"
	"strings"
	"testing"

	"vessel/internal/dataplane"
	"vessel/internal/obs"
	"vessel/internal/sim"
)

func us(n int64) sim.Time { return sim.Time(n * int64(sim.Microsecond)) }

// TestConservationByConstruction: however a journey moves between
// segments — forwards, retroactively, repeatedly — the segment sum
// equals Done-Arrive exactly once finished.
func TestConservationByConstruction(t *testing.T) {
	tr := New()
	j := tr.Mint("req", us(10))
	j.To(SegRun, us(12))
	j.To(SegGate, us(12)) // zero-length transition
	j.To(SegRun, us(15))
	j.To(SegQueue, us(14)) // retroactive, clamps to 15
	j.To(SegData, us(20))
	j.Finish(us(25))

	if !j.Finished() {
		t.Fatal("not finished")
	}
	if got, want := j.Sum(), j.Done.Sub(j.Arrive); got != want {
		t.Fatalf("Sum %d != sojourn %d", int64(got), int64(want))
	}
	if j.Done != us(25) {
		t.Fatalf("Done = %d, want %d", int64(j.Done), int64(us(25)))
	}
	// Decomposition: queue [10,12] and [15,20] (the retroactive hop to
	// 14 clamped at 15, so run got zero length), gate [12,15], data
	// [20,25].
	if j.Segs[SegQueue] != 7*sim.Microsecond {
		t.Fatalf("queue = %v, want 7µs", j.Segs[SegQueue])
	}
	if j.Segs[SegGate] != 3*sim.Microsecond {
		t.Fatalf("gate = %v, want 3µs", j.Segs[SegGate])
	}
	if j.Segs[SegRun] != 0 {
		t.Fatalf("run = %v, want 0 (clamped to zero length)", j.Segs[SegRun])
	}
	if j.Segs[SegData] != 5*sim.Microsecond {
		t.Fatalf("data = %v, want 5µs", j.Segs[SegData])
	}
	// Finished journeys ignore further transitions.
	j.To(SegRun, us(30))
	j.Finish(us(40))
	if j.Done != us(25) || j.Sum() != j.Done.Sub(j.Arrive) {
		t.Fatal("finished journey mutated")
	}
}

// TestClampNeverNegative: a transition timestamp before the current
// segment's open instant must clamp, never produce a negative segment.
func TestClampNeverNegative(t *testing.T) {
	tr := New()
	j := tr.Mint("req", us(100))
	j.To(SegUintr, us(50)) // far in the past: clamps to 100
	j.To(SegRun, us(110))
	j.Finish(us(120))
	for s, d := range j.Segs {
		if d < 0 {
			t.Fatalf("segment %s negative: %d", Segment(s), int64(d))
		}
	}
	if j.Sum() != j.Done.Sub(j.Arrive) {
		t.Fatal("conservation broke under clamping")
	}
}

// TestTreeLinks: the span tree carries parent/child and follows-from
// edges in creation order.
func TestTreeLinks(t *testing.T) {
	tr := New()
	j := tr.Mint("req", us(0))
	j.To(SegRun, us(5))
	j.Annotate("gate.invoke", us(6))
	j.To(SegData, us(8))
	j.Finish(us(9))

	nodes := j.Tree()
	if len(nodes) != 5 { // root + queue + note + run + data
		t.Fatalf("got %d nodes, want 5", len(nodes))
	}
	root := nodes[0]
	if root.Parent != -1 || root.Start != us(0) || root.End != us(9) {
		t.Fatalf("bad root: %+v", root)
	}
	for _, n := range nodes[1:] {
		if n.Parent != 0 {
			t.Fatalf("node %d parent %d, want 0", n.ID, n.Parent)
		}
	}
	// queue span, then the instant note (Follows -1), then run follows
	// queue, data follows run.
	queue, note, run, data := nodes[1], nodes[2], nodes[3], nodes[4]
	if queue.Seg != SegQueue || queue.Follows != -1 {
		t.Fatalf("bad queue node: %+v", queue)
	}
	if note.Name != "gate.invoke" || note.Start != note.End || note.Follows != -1 {
		t.Fatalf("bad note node: %+v", note)
	}
	if run.Seg != SegRun || run.Follows != queue.ID {
		t.Fatalf("run follows %d, want %d", run.Follows, queue.ID)
	}
	if data.Seg != SegData || data.Follows != run.ID {
		t.Fatalf("data follows %d, want %d", data.Follows, run.ID)
	}
}

// TestNilSafety: every method on nil tracer/journey is a no-op.
func TestNilSafety(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Fatal("nil tracer enabled")
	}
	j := tr.Mint("x", us(0))
	if j != nil {
		t.Fatal("nil tracer minted a journey")
	}
	j.To(SegRun, us(1))
	j.Annotate("n", us(1))
	j.Finish(us(2))
	if j.Finished() || j.Sojourn() != 0 || j.Sum() != 0 || j.Cur() != SegQueue {
		t.Fatal("nil journey has state")
	}
	tr.Event(us(0), "e", "d")
	tr.Dump(us(0), "r")
	if tr.Reg() != nil || tr.Flight() != nil || tr.Journeys() != nil ||
		tr.Minted() != 0 || tr.Goodput() != 0 || tr.ViolationFrac() != 0 {
		t.Fatal("nil tracer has state")
	}
	if g, b := tr.SLOCounts(); g != 0 || b != 0 {
		t.Fatal("nil tracer has SLO counts")
	}
	if a := tr.Analyze(); a.Finished != 0 {
		t.Fatal("nil tracer analyzed something")
	}
	if tr.Records() != nil || tr.Dumps() != nil || tr.Windows() != nil {
		t.Fatal("nil tracer exported something")
	}
}

// TestFlightRecorderDump: the flight recorder retains the journey event
// stream, dumps snapshot it with the overwrite count, and a bounded ring
// counts what it loses.
func TestFlightRecorderDump(t *testing.T) {
	tr := NewTracer(Config{FlightCap: 4})
	for i := 0; i < 8; i++ {
		j := tr.Mint("req", us(int64(i)))
		j.Finish(us(int64(i) + 1))
	}
	if tr.Flight().Overwritten() == 0 {
		t.Fatal("ring never overwrote with cap 4 and 16 events")
	}
	d := tr.Dump(us(100), "uproc.kill.watchdog:w")
	if d.Reason != "uproc.kill.watchdog:w" || len(d.Events) == 0 {
		t.Fatalf("bad dump: %+v", d)
	}
	if d.Overwritten != tr.Flight().Overwritten() {
		t.Fatal("dump overwritten mismatch")
	}
	text := d.Text()
	if !strings.HasPrefix(text, "# vessel-flight-dump v1\n") {
		t.Fatalf("bad dump header: %q", text)
	}
	if !strings.Contains(text, "reason uproc.kill.watchdog:w") {
		t.Fatalf("dump text missing reason: %q", text)
	}
	if len(tr.Dumps()) != 1 {
		t.Fatal("dump not retained")
	}
	if got := tr.Reg().Counter("journey.flight.dump"); got != 1 {
		t.Fatalf("dump counter = %d", got)
	}
}

// TestSLOWindows: finishes classify against the target and roll into
// fixed virtual-time windows.
func TestSLOWindows(t *testing.T) {
	tr := NewTracer(Config{SLOTarget: 2 * sim.Microsecond, SLOWindow: 10 * sim.Microsecond})
	finish := func(arrive, done sim.Time) {
		j := tr.Mint("req", arrive)
		j.Finish(done)
	}
	finish(us(1), us(2))  // 1µs: good, window 0
	finish(us(3), us(8))  // 5µs: bad, window 0
	finish(us(11), us(12)) // good, window 1
	if g, b := tr.SLOCounts(); g != 2 || b != 1 {
		t.Fatalf("SLO counts good=%d bad=%d", g, b)
	}
	if f := tr.ViolationFrac(); f < 0.33 || f > 0.34 {
		t.Fatalf("violation frac %f", f)
	}
	ws := tr.Windows()
	if len(ws) != 2 {
		t.Fatalf("got %d windows, want 2 (closed + open): %+v", len(ws), ws)
	}
	if ws[0].Index != 0 || ws[0].Good != 1 || ws[0].Bad != 1 {
		t.Fatalf("window 0: %+v", ws[0])
	}
	if ws[1].Index != 1 || ws[1].Good != 1 || ws[1].Bad != 0 {
		t.Fatalf("window 1: %+v", ws[1])
	}
}

// TestExportRoundTrip: WriteText → ReadText → WriteText is
// byte-identical, including unfinished journeys.
func TestExportRoundTrip(t *testing.T) {
	tr := New()
	j := tr.Mint("req a", us(1))
	j.To(SegRun, us(2))
	j.Finish(us(3))
	tr.Mint("hang", us(4)) // unfinished: root node End stays unset

	var first bytes.Buffer
	if err := tr.WriteText(&first); err != nil {
		t.Fatal(err)
	}
	recs, overwritten, err := ReadText(bytes.NewReader(first.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || overwritten != 0 {
		t.Fatalf("decoded %d recs, overwritten %d", len(recs), overwritten)
	}
	if recs[0].Name != "req a" { // display underscore round-trips back? no: "_" stays
		// Names with spaces export as underscores; the round-trip keeps
		// the exported form.
		if recs[0].Name != "req_a" {
			t.Fatalf("name %q", recs[0].Name)
		}
	}
	var second bytes.Buffer
	if err := WriteText(&second, recs, overwritten); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Fatalf("round trip not byte-identical:\n--- first\n%s--- second\n%s", &first, &second)
	}
}

// TestChromeTraceValidates: the journey Chrome export (including flow
// events) passes the repo's own Chrome trace validator.
func TestChromeTraceValidates(t *testing.T) {
	tr := New()
	j := tr.Mint("req", us(1))
	j.To(SegRun, us(3))
	j.To(SegData, us(5))
	j.Finish(us(8))
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if err := obs.ValidateChromeTrace(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	for _, want := range []string{`"ph":"s"`, `"ph":"f"`, `"bp":"e"`, `"cat":"journey.flow"`, `"cat":"journey.run"`} {
		if !strings.Contains(s, want) {
			t.Fatalf("chrome trace missing %s:\n%s", want, s)
		}
	}
}

// TestCollapsed: finished journeys aggregate into name;segment weights
// in first-touch order.
func TestCollapsed(t *testing.T) {
	tr := New()
	for i := 0; i < 2; i++ {
		j := tr.Mint("req", us(int64(10*i)))
		j.To(SegRun, us(int64(10*i)+2))
		j.Finish(us(int64(10*i) + 5))
	}
	tr.Mint("hang", us(100)) // unfinished: excluded
	var buf bytes.Buffer
	if err := tr.WriteCollapsed(&buf); err != nil {
		t.Fatal(err)
	}
	want := "req;queue 4000\nreq;run 6000\n"
	if buf.String() != want {
		t.Fatalf("collapsed:\n%q\nwant\n%q", buf.String(), want)
	}
}

// TestTraceNVMe: dataplane submit→completion pairs become SegData
// journeys, and cancelled commands stay unfinished.
func TestTraceNVMe(t *testing.T) {
	eng := sim.NewEngine()
	d, err := dataplane.NewNVMe(eng, 8, 8)
	if err != nil {
		t.Fatal(err)
	}
	tr := New()
	TraceNVMe(tr, d, "disk")
	if err := d.Submit(dataplane.Cmd{Op: dataplane.OpRead, LBA: 7, Tag: 1}); err != nil {
		t.Fatal(err)
	}
	eng.RunAll(1 << 20)
	js := tr.Journeys()
	if len(js) != 1 {
		t.Fatalf("got %d journeys", len(js))
	}
	j := js[0]
	if !j.Finished() {
		t.Fatal("completion did not finish the journey")
	}
	if j.Name != "disk.read" {
		t.Fatalf("name %q", j.Name)
	}
	if j.Segs[SegData] != j.Sum() || j.Sum() == 0 {
		t.Fatalf("device journey not pure data time: %+v", j.Segs)
	}
	if j.Sum() != j.Done.Sub(j.Arrive) {
		t.Fatal("conservation broke on device journey")
	}

	// A cancelled in-flight command never completes its journey.
	if err := d.Submit(dataplane.Cmd{Op: dataplane.OpWrite, LBA: 9, Tag: 2}); err != nil {
		t.Fatal(err)
	}
	d.CancelInflight()
	eng.RunAll(1 << 20)
	js = tr.Journeys()
	if len(js) != 2 || js[1].Finished() {
		t.Fatal("cancelled command should leave an unfinished journey")
	}
}

// TestFlightEventStrings: journey lifecycle events land in the flight
// recorder in simulation order with stable rendering.
func TestFlightEventStrings(t *testing.T) {
	tr := New()
	j := tr.Mint("req", us(1))
	j.To(SegRun, us(2))
	j.Finish(us(3))
	var names []string
	for _, e := range tr.Flight().Events() {
		names = append(names, e.Name)
	}
	want := []string{"journey.mint", "journey.seg", "journey.finish"}
	if len(names) != len(want) {
		t.Fatalf("events %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("events %v, want %v", names, want)
		}
	}
}
