package journey

import (
	"fmt"
	"strings"

	"vessel/internal/obs"
	"vessel/internal/sim"
	"vessel/internal/stats"
	"vessel/internal/trace"
)

// DefaultFlightCap is the default flight-recorder capacity: the last N
// journey events retained for black-box postmortems.
const DefaultFlightCap = 1 << 10

// Config parameterises a Tracer. The zero value is usable: default
// flight-recorder capacity, no SLO target, an owned metrics registry.
type Config struct {
	// FlightCap bounds the flight recorder (≤0 selects DefaultFlightCap).
	FlightCap int
	// SLOTarget classifies finished journeys: sojourn above the target
	// is an SLO violation. Zero disables SLO accounting.
	SLOTarget sim.Duration
	// SLOWindow rolls health signals into fixed windows of virtual time
	// (goodput and violation fraction per window). Zero keeps only the
	// whole-run signal.
	SLOWindow sim.Duration
	// Registry receives the tracer's health counters and histograms
	// (journey.finished, journey.slo.*, journey.seg.*). Nil allocates a
	// private registry, so journey tracing works with obs off.
	Registry *obs.Registry
	// SampleEvery records 1 in N requests (values ≤1 record all): Mint
	// returns a live journey for every Nth request and nil — the
	// universally safe no-op journey — for the rest. The skip is a
	// deterministic arrival-counter decision, so identical runs sample
	// identical requests. Sampling trades per-request attribution
	// coverage for mint/record overhead; SLO tallies and histograms then
	// describe the sampled population.
	SampleEvery int
}

// WindowStat is one closed SLO window's health signal.
type WindowStat struct {
	Index int64  // window number (Done / SLOWindow)
	Good  uint64 // finishes within the SLO target
	Bad   uint64 // finishes above the SLO target
}

// FlightLog is the always-on flight recorder: a bounded view over the
// tail of the tracer's event arena. The arena already records every
// journey event in simulation order for the span trees, so the black
// box costs nothing extra on the hot path — the last FlightCap events
// are simply the arena's tail, rendered to trace.Events only when a
// dump or export actually reads them. Events that scroll out of the
// window are counted as overwritten, never lost silently.
type FlightLog struct {
	t   *Tracer
	max int
}

// Overwritten returns how many events have scrolled out of the window.
func (l *FlightLog) Overwritten() uint64 {
	if l == nil {
		return 0
	}
	if total := l.t.logTotal(); total > l.max {
		return uint64(total - l.max)
	}
	return 0
}

// Events returns the retained events oldest-first, rendered in the
// canonical trace.Event form.
func (l *FlightLog) Events() []trace.Event {
	if l == nil {
		return nil
	}
	total := l.t.logTotal()
	n := total
	if n > l.max {
		n = l.max
	}
	if n == 0 {
		return nil
	}
	out := make([]trace.Event, 0, n)
	for i := total - n; i < total; i++ {
		out = append(out, l.t.renderEvent(l.t.logAt(i)))
	}
	return out
}

// Dump is one flight-recorder snapshot: the black-box postmortem taken
// when a uProcess is killed, a domain restarts, or a failsafe swap
// fires.
type Dump struct {
	At          sim.Time
	Reason      string
	Overwritten uint64
	Events      []trace.Event
}

// Text renders the dump in its canonical byte form.
func (d Dump) Text() string {
	var b strings.Builder
	b.WriteString("# vessel-flight-dump v1\n")
	fmt.Fprintf(&b, "# at %d reason %s events %d overwritten %d\n",
		int64(d.At), d.Reason, len(d.Events), d.Overwritten)
	for _, e := range d.Events {
		b.WriteString(e.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// Tracer is the per-run journey hub: it mints journeys in deterministic
// order, owns the critical-path histograms and the SLO monitor, and
// runs the always-on bounded flight recorder. The nil *Tracer is the
// disabled state — every method returns immediately, and journeys
// minted from it are nil (themselves no-ops).
type Tracer struct {
	cfg    Config
	reg    *obs.Registry
	minted uint64
	// seen counts every Mint call, sampled or not — the denominator of
	// the sampling decision (and of Sampled).
	seen    uint64
	seg     [NumSegments]*stats.Histogram
	sojourn *stats.Histogram
	flight  *FlightLog
	// Journeys are carved out of fixed-size arena blocks (pointers stay
	// valid — blocks are never moved, only replaced when full), cutting
	// per-request allocations and GC pointer churn on the mint path.
	// Mint order is blocks then arenaBlk[:arenaN]; there is no separate
	// pointer index.
	blocks   [][]Journey
	arenaBlk []Journey
	arenaN   int
	// The event arena: fixed 4096-entry pointer-free blocks shared by
	// all journeys, holding every journey event in simulation order. An
	// entry's global index is block<<logShift | offset; journeys chain
	// their span entries backwards through it (see Journey.lhead), and
	// the flight recorder is a bounded view of its tail — so recording
	// any event is one 24-byte store with no allocation and nothing for
	// the GC to scan.
	lblocks [][]logEntry
	lN      int
	// The intern table backing annotation and seam-event names: a small
	// fixed vocabulary, referenced from entries by index.
	strs []string
	sidx map[string]int32

	good, bad       uint64
	curWindow       int64
	winGood, winBad uint64
	windowOpen      bool
	windows         []WindowStat
	dumps           []Dump
}

// NewTracer returns an enabled tracer.
func NewTracer(cfg Config) *Tracer {
	if cfg.FlightCap <= 0 {
		cfg.FlightCap = DefaultFlightCap
	}
	reg := cfg.Registry
	if reg == nil {
		reg = obs.NewRegistry()
	}
	t := &Tracer{cfg: cfg, reg: reg, sidx: make(map[string]int32)}
	t.flight = &FlightLog{t: t, max: cfg.FlightCap}
	// The critical-path histograms ARE the registry's: resolved once
	// here, recorded by handle on the finish path (no per-sample name
	// lookup), summarised by every registry snapshot.
	for s := range t.seg {
		t.seg[s] = reg.Hist("journey.seg." + Segment(s).String())
	}
	t.sojourn = reg.Hist("journey.sojourn")
	return t
}

// New returns an enabled tracer with default configuration.
func New() *Tracer { return NewTracer(Config{}) }

// Enabled reports whether the tracer records anything.
func (t *Tracer) Enabled() bool { return t != nil }

// Reg returns the tracer's metrics registry (nil when disabled). Any
// pending journey decompositions are folded into the registry-backed
// histograms first, so a snapshot taken through here is complete.
func (t *Tracer) Reg() *obs.Registry {
	if t == nil {
		return nil
	}
	t.fold()
	return t.reg
}

// Mint opens a new journey for a request arriving at the given instant.
// The journey starts in SegQueue. Journey IDs are mint order — the
// deterministic identity every export keys on. Under sampling
// (Config.SampleEvery > 1) only every Nth request gets a journey; the
// rest return nil, which every Journey method accepts as a no-op, so
// callers never check.
func (t *Tracer) Mint(name string, at sim.Time) *Journey {
	if t == nil {
		return nil
	}
	t.seen++
	if t.cfg.SampleEvery > 1 && (t.seen-1)%uint64(t.cfg.SampleEvery) != 0 {
		return nil
	}
	t.minted++
	if t.arenaN == len(t.arenaBlk) {
		if t.arenaBlk != nil {
			t.blocks = append(t.blocks, t.arenaBlk)
		}
		t.arenaBlk = make([]Journey, 1<<arenaShift)
		t.arenaN = 0
	}
	j := &t.arenaBlk[t.arenaN]
	t.arenaN++
	// Field assignment, not a struct literal: the arena slot is used
	// exactly once and comes back zeroed from the allocator, so writing
	// only the live fields skips re-clearing the inline node buffer.
	j.ID = t.minted
	j.Name = name
	j.Arrive = at
	j.t = t
	j.since = at
	j.lhead = -1
	t.addLog(logEntry{at: at, jid: uint32(j.ID), note: noteMint, prev: -1})
	return j
}

// logShift sizes the event-arena blocks (1<<logShift entries, 96 KiB of
// pointer-free log per block); arenaShift sizes the journey arena blocks.
const (
	logShift   = 12
	arenaShift = 9
)

// addLog appends one entry to the event arena and returns its global
// index. Only reachable through a live tracer (journey methods no-op on
// nil journeys before getting here), so t is never nil.
func (t *Tracer) addLog(e logEntry) int32 {
	if len(t.lblocks) == 0 || t.lN == 1<<logShift {
		t.lblocks = append(t.lblocks, make([]logEntry, 1<<logShift))
		t.lN = 0
	}
	blk := t.lblocks[len(t.lblocks)-1]
	blk[t.lN] = e
	idx := int32((len(t.lblocks)-1)<<logShift | t.lN)
	t.lN++
	return idx
}

// chain materializes one journey's span-log entries oldest-first by
// walking its backwards chain from head (-1 yields nil).
func (t *Tracer) chain(head int32) []logEntry {
	if t == nil || head < 0 {
		return nil
	}
	n := 0
	for i := head; i >= 0; n++ {
		i = t.lblocks[i>>logShift][i&(1<<logShift-1)].prev
	}
	out := make([]logEntry, n)
	for i := head; i >= 0; {
		e := t.lblocks[i>>logShift][i&(1<<logShift-1)]
		n--
		out[n] = e
		i = e.prev
	}
	return out
}

// logTotal returns the number of entries in the event arena.
func (t *Tracer) logTotal() int {
	if t == nil || len(t.lblocks) == 0 {
		return 0
	}
	return (len(t.lblocks)-1)<<logShift | t.lN
}

// logAt returns the arena entry at a global index.
func (t *Tracer) logAt(i int) logEntry {
	return t.lblocks[i>>logShift][i&(1<<logShift-1)]
}

// journeyByID returns the minted journey with the given ID (mint order
// is arena order, so this is a direct block lookup).
func (t *Tracer) journeyByID(id uint64) *Journey {
	i := int(id - 1)
	if bi := i >> arenaShift; bi < len(t.blocks) {
		return &t.blocks[bi][i&(1<<arenaShift-1)]
	}
	return &t.arenaBlk[i&(1<<arenaShift-1)]
}

// renderEvent renders one arena entry in the canonical trace.Event form
// the flight recorder exposes.
func (t *Tracer) renderEvent(e logEntry) trace.Event {
	switch {
	case e.note >= 0:
		return trace.Event{T: e.at, Name: "journey.note", Detail: fmt.Sprintf("j=%d %s", e.jid, t.noteStr(e.note))}
	case e.note >= -int32(NumSegments):
		return trace.Event{T: e.at, Name: "journey.seg", Detail: fmt.Sprintf("j=%d seg=%s", e.jid, Segment(-1-e.note))}
	case e.note == noteMint:
		return trace.Event{T: e.at, Name: "journey.mint", Detail: fmt.Sprintf("j=%d app=%s", e.jid, t.journeyByID(uint64(e.jid)).Name)}
	case e.note == noteFinish:
		j := t.journeyByID(uint64(e.jid))
		return trace.Event{T: e.at, Name: "journey.finish", Detail: fmt.Sprintf("j=%d sojourn=%d", e.jid, int64(j.Sojourn()))}
	default: // noteEvent: prev is the interned name, jid the interned detail
		return trace.Event{T: e.at, Name: t.noteStr(e.prev), Detail: t.noteStr(int32(e.jid))}
	}
}

// intern maps a string into the tracer's intern table; nil-safe so
// journey methods can call through unconditionally.
func (t *Tracer) intern(s string) int32 {
	if t == nil {
		return -1
	}
	if i, ok := t.sidx[s]; ok {
		return i
	}
	i := int32(len(t.strs))
	t.strs = append(t.strs, s)
	t.sidx[s] = i
	return i
}

// noteStr resolves an interned annotation name.
func (t *Tracer) noteStr(i int32) string {
	if t == nil || i < 0 || int(i) >= len(t.strs) {
		return ""
	}
	return t.strs[i]
}

// each calls fn for every minted journey in mint order.
func (t *Tracer) each(fn func(j *Journey)) {
	for _, blk := range t.blocks {
		for i := range blk {
			fn(&blk[i])
		}
	}
	for i := 0; i < t.arenaN; i++ {
		fn(&t.arenaBlk[i])
	}
}

// Event records a seam event that is not bound to one journey (a
// scheduler wakeup→run switch edge, a watchdog kill, a domain restart)
// into the flight recorder's event stream.
func (t *Tracer) Event(at sim.Time, name, detail string) {
	if t == nil {
		return
	}
	t.addLog(logEntry{at: at, jid: uint32(t.intern(detail)), note: noteEvent, prev: t.intern(name)})
}

// finish folds a completed journey into the histograms and the SLO
// monitor. Called by Journey.Finish.
func (t *Tracer) finish(j *Journey) {
	if t == nil {
		return
	}
	soj := j.Sojourn()
	t.addLog(logEntry{at: j.Done, jid: uint32(j.ID), note: noteFinish, prev: -1})
	// The sojourn/segment histograms are NOT recorded here: folding is
	// deferred to the first read (see fold), keeping the finish hot path
	// to one arena store plus the SLO tallies below.
	if t.cfg.SLOTarget <= 0 {
		return
	}
	viol := soj > t.cfg.SLOTarget
	if viol {
		t.bad++
		t.reg.Inc("journey.slo.violation")
	} else {
		t.good++
		t.reg.Inc("journey.slo.good")
	}
	if t.cfg.SLOWindow <= 0 {
		return
	}
	idx := int64(j.Done) / int64(t.cfg.SLOWindow)
	if t.windowOpen && idx != t.curWindow {
		t.rollWindow()
	}
	t.windowOpen = true
	t.curWindow = idx
	if viol {
		t.winBad++
	} else {
		t.winGood++
	}
}

// fold records every finished-but-unfolded journey's sojourn and
// segment decomposition into the registry-backed histograms (resolved
// handles; see NewTracer). Folding runs lazily — Analyze and Reg call
// it before any histogram read — so the per-request finish path pays
// nothing for them. Histogram content is independent of record order,
// and each journey folds exactly once, so the result is byte-identical
// to eager recording at every read point.
func (t *Tracer) fold() {
	t.each(func(j *Journey) {
		if !j.finished || j.folded {
			return
		}
		j.folded = true
		t.sojourn.Record(int64(j.Sojourn()))
		for s := Segment(0); s < NumSegments; s++ {
			if d := j.Segs[s]; d > 0 {
				t.seg[s].Record(int64(d))
			}
		}
	})
}

func (t *Tracer) rollWindow() {
	t.windows = append(t.windows, WindowStat{Index: t.curWindow, Good: t.winGood, Bad: t.winBad})
	t.reg.Observe("journey.slo.window.good", int64(t.winGood))
	t.reg.Observe("journey.slo.window.violation", int64(t.winBad))
	t.winGood, t.winBad = 0, 0
}

// Windows returns the closed SLO windows (plus the currently open one,
// if any, as the final entry).
func (t *Tracer) Windows() []WindowStat {
	if t == nil {
		return nil
	}
	out := append([]WindowStat(nil), t.windows...)
	if t.windowOpen {
		out = append(out, WindowStat{Index: t.curWindow, Good: t.winGood, Bad: t.winBad})
	}
	return out
}

// Goodput returns the number of finished journeys within the SLO
// target.
func (t *Tracer) Goodput() uint64 {
	if t == nil {
		return 0
	}
	return t.good
}

// SLOCounts returns the (good, violating) finish tallies.
func (t *Tracer) SLOCounts() (good, bad uint64) {
	if t == nil {
		return 0, 0
	}
	return t.good, t.bad
}

// ViolationFrac returns the fraction of SLO-classified finishes that
// violated the target (0 when the SLO monitor is off or nothing has
// finished) — the health signal selfheal consumes alongside phi-accrual.
func (t *Tracer) ViolationFrac() float64 {
	if t == nil || t.good+t.bad == 0 {
		return 0
	}
	return float64(t.bad) / float64(t.good+t.bad)
}

// PathMix returns the fraction of total attributed time per segment
// over finished journeys whose name starts with prefix (an empty prefix
// selects all) — the per-domain critical-path mix gauge.
func (t *Tracer) PathMix(prefix string) [NumSegments]float64 {
	var mix [NumSegments]float64
	if t == nil {
		return mix
	}
	var segs [NumSegments]float64
	var tot float64
	t.each(func(j *Journey) {
		if !j.finished || !strings.HasPrefix(j.Name, prefix) {
			return
		}
		for s, d := range j.Segs {
			segs[s] += float64(d)
			tot += float64(d)
		}
	})
	if tot == 0 {
		return mix
	}
	for s := range segs {
		mix[s] = segs[s] / tot
	}
	return mix
}

// Minted returns how many journeys have been minted.
func (t *Tracer) Minted() uint64 {
	if t == nil {
		return 0
	}
	return t.minted
}

// Sampled returns how many requests Mint has seen and how many of them
// received a journey; the two are equal when sampling is off.
func (t *Tracer) Sampled() (seen, minted uint64) {
	if t == nil {
		return 0, 0
	}
	return t.seen, t.minted
}

// Journeys returns the minted journeys in mint order (assembled on
// demand — the tracer keeps journeys in arena blocks, not a pointer
// index).
func (t *Tracer) Journeys() []*Journey {
	if t == nil || t.minted == 0 {
		return nil
	}
	out := make([]*Journey, 0, t.minted)
	t.each(func(j *Journey) { out = append(out, j) })
	return out
}

// Flight returns the flight recorder's event log (nil when disabled).
func (t *Tracer) Flight() *FlightLog {
	if t == nil {
		return nil
	}
	return t.flight
}

// Dump snapshots the flight recorder — the black-box postmortem. The
// dump is retained on the tracer (for the selfheal report) and
// returned.
func (t *Tracer) Dump(at sim.Time, reason string) Dump {
	if t == nil {
		return Dump{}
	}
	d := Dump{At: at, Reason: reason, Overwritten: t.flight.Overwritten(), Events: t.flight.Events()}
	t.dumps = append(t.dumps, d)
	t.reg.Inc("journey.flight.dump")
	return d
}

// Dumps returns the retained flight-recorder dumps in capture order.
func (t *Tracer) Dumps() []Dump {
	if t == nil {
		return nil
	}
	return t.dumps
}

// Analysis is the critical-path report: tail latency attributed, not
// just measured.
type Analysis struct {
	Finished   uint64
	Unfinished uint64
	Sojourn    stats.Summary
	Seg        [NumSegments]stats.Summary
	// Mix is the fraction of total attributed time per segment.
	Mix [NumSegments]float64
}

// Analyze summarises the tracer's finished journeys.
func (t *Tracer) Analyze() Analysis {
	var a Analysis
	if t == nil {
		return a
	}
	t.fold()
	t.each(func(j *Journey) {
		if j.finished {
			a.Finished++
		} else {
			a.Unfinished++
		}
	})
	a.Sojourn = t.sojourn.Summarize()
	for s := range t.seg {
		a.Seg[s] = t.seg[s].Summarize()
	}
	a.Mix = t.PathMix("")
	return a
}

// String renders the analysis as the human-readable critical-path
// breakdown (deterministic; used by vesselsim -journey output).
func (a Analysis) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "journeys: %d finished, %d unfinished\n", a.Finished, a.Unfinished)
	fmt.Fprintf(&b, "sojourn:  %s\n", a.Sojourn.String())
	for s := Segment(0); s < NumSegments; s++ {
		if a.Seg[s].Count == 0 {
			continue
		}
		fmt.Fprintf(&b, "  %-6s %5.1f%%  %s\n", s.String(), a.Mix[s]*100, a.Seg[s].String())
	}
	return b.String()
}
