// Package journey implements request-journey tracing: a trace context
// minted per workload request and propagated causally through every
// crossing seam the codebase exposes as hooks — scheduler wakeup→run
// edges, user-interrupt deferred-delivery windows, call-gate crossings,
// and dataplane submit→completion pairs. Each journey is a deterministic
// span tree (parent/child plus follows-from links between consecutive
// segments) whose critical-path segments partition the request's sojourn
// *exactly*: queueing, running, uintr-deferred, gate, and dataplane time
// sum to arrival→completion by construction, and the conformance oracle
// re-checks the identity against the scheduler's own measurement.
//
// The same three rules as internal/obs govern this package:
//
//   - Determinism. Journey IDs are mint order, node IDs are creation
//     order, all timestamps are virtual time, and every export iterates
//     in a fixed order. Two runs with the same seed produce
//     byte-identical journey exports and flight-recorder dumps.
//   - Near-zero cost when disabled. Every method is safe on a nil
//     *Tracer / nil *Journey and returns immediately; instrumentation
//     sites call through without guarding. Canonical run bytes are
//     identical with journey tracing on or off — tracing observes, it
//     never perturbs.
//   - Bounded views where it matters. The always-on flight recorder is
//     a bounded window over the tracer's event arena: the last N journey
//     events survive for a black-box postmortem, scroll-outs are
//     counted, and a Dump snapshot costs nothing until a
//     kill/restart/failsafe actually fires.
package journey

import (
	"fmt"

	"vessel/internal/sim"
)

// Segment classifies one slice of a request's critical path. The five
// segments partition the sojourn: at every instant between arrival and
// completion a journey is in exactly one segment.
type Segment uint8

const (
	// SegQueue is time spent queued waiting for a core (including
	// control-plane dispatch latency before the run queue is reachable).
	SegQueue Segment = iota
	// SegRun is time spent executing on a core.
	SegRun
	// SegUintr is time inside a user-interrupt delivery or deferred-
	// delivery window that gates this request's dispatch.
	SegUintr
	// SegGate is crossing overhead: context-switch cost, dispatcher
	// handoff, call-gate style entry before the request runs.
	SegGate
	// SegData is time inside the data plane: IOKernel packet steering,
	// device submit→completion windows.
	SegData
	NumSegments
)

func (s Segment) String() string {
	switch s {
	case SegQueue:
		return "queue"
	case SegRun:
		return "run"
	case SegUintr:
		return "uintr"
	case SegGate:
		return "gate"
	case SegData:
		return "data"
	default:
		return fmt.Sprintf("Segment(%d)", uint8(s))
	}
}

// ParseSegment is the inverse of String, used by the journey decoder.
func ParseSegment(s string) (Segment, error) {
	for seg := Segment(0); seg < NumSegments; seg++ {
		if seg.String() == s {
			return seg, nil
		}
	}
	return 0, fmt.Errorf("journey: unknown segment %q", s)
}

// Node is one node of a journey's span tree. Node 0 is the root (the
// whole request, Parent == -1); every closed segment interval and every
// instant annotation is a child of the root. Follows links a child to
// the previous closed segment span — the follows-from edge of the
// causal chain — or is -1 for the first.
type Node struct {
	ID      int
	Parent  int
	Follows int
	Seg     Segment
	Start   sim.Time
	End     sim.Time
	Name    string
}

// Journey is one request's trace context: the live segment state
// machine plus the compactly-logged span tree. All methods are safe on
// a nil *Journey, so instrumentation sites never guard.
type Journey struct {
	ID     uint64
	Name   string
	Arrive sim.Time
	// Done is the completion time; valid only once Finished.
	Done sim.Time
	// Segs accumulates the critical-path decomposition. Once Finished,
	// the segments sum exactly to Done-Arrive.
	Segs [NumSegments]sim.Duration

	t        *Tracer
	cur      Segment
	since    sim.Time
	finished bool
	// folded marks that this journey's decomposition has been recorded
	// into the tracer's histograms. Folding is deferred off the finish
	// path (see Tracer.fold): histogram content is a pure function of the
	// set of finished journeys, so recording lazily — right before any
	// read — is observably identical and keeps Finish to one arena store.
	folded bool
	// The span tree is logged compactly on the hot path — one 16-byte
	// entry per segment transition or annotation, appended to the
	// tracer's shared pointer-free chain arena — and materialized on
	// demand by Tree(). lhead is the index of this journey's most recent
	// entry (-1 when none); entries chain backwards via prev, so
	// concurrent journeys interleave freely in the arena without any
	// per-journey buffer or allocation.
	lhead int32
}

// logEntry is one compact event in the tracer's arena — the single
// store every journey event costs on the hot path. The arena doubles as
// the span log and the flight recorder's event stream: entries append
// in simulation order, and the FlightLog renders the tail on demand.
//
// note encodes the kind:
//
//	note ≥ 0             instant annotation; note indexes the intern table
//	-NumSegments ≤ note  segment transition into Segment(-1-note)
//	noteMint/noteFinish  journey lifecycle (jid identifies the journey)
//	noteEvent            tracer-level seam event; prev holds the interned
//	                     name and jid the interned detail (no journey)
//
// prev chains a journey's transition/annotation entries backwards (-1 at
// the head) so Tree can replay them; lifecycle entries are unchained.
type logEntry struct {
	at   sim.Time
	jid  uint32
	note int32
	prev int32
}

const (
	noteMint   int32 = -16
	noteFinish int32 = -17
	noteEvent  int32 = -18
)

// closeSeg closes the current segment at the given instant (clamped
// monotonically: a retroactive timestamp before the segment opened
// collapses to zero length, never negative), charging the elapsed time
// to the segment accumulator.
func (j *Journey) closeSeg(at sim.Time) {
	if at < j.since {
		at = j.since
	}
	j.Segs[j.cur] += at.Sub(j.since)
	j.since = at
}

// To moves the journey into a new segment at the given instant, closing
// the current one. A transition into the current segment is a no-op
// (the segment keeps accumulating). Retroactive instants are allowed —
// the VESSEL reaction path splits an already-elapsed queue window into
// queue|uintr retroactively — and clamp at the segment's open time, so
// conservation can never break.
func (j *Journey) To(seg Segment, at sim.Time) {
	if j == nil || j.finished || seg == j.cur {
		return
	}
	j.closeSeg(at)
	j.cur = seg
	// The entry stores the clamped instant (j.since after closeSeg):
	// replaying it yields the same tree as replaying the raw timestamp,
	// and the flight recorder renders the transition where it took
	// effect.
	j.lhead = j.t.addLog(logEntry{at: j.since, jid: uint32(j.ID), note: -1 - int32(seg), prev: j.lhead})
}

// Annotate records an instant marker (a seam crossing: a SENDUIPI
// outcome, a gate invoke, a device submit) as a zero-length child node
// and a flight-recorder event. It does not change the segment.
func (j *Journey) Annotate(name string, at sim.Time) {
	if j == nil || j.finished {
		return
	}
	if at < j.since {
		at = j.since
	}
	idx := j.t.intern(name)
	j.lhead = j.t.addLog(logEntry{at: at, jid: uint32(j.ID), note: idx, prev: j.lhead})
}

// Finish completes the journey: the current segment closes at the given
// instant, the root span gets its end time, and the tracer folds the
// decomposition into its critical-path histograms, SLO monitor, and
// flight recorder. Further To/Annotate/Finish calls are no-ops.
func (j *Journey) Finish(at sim.Time) {
	if j == nil || j.finished {
		return
	}
	j.closeSeg(at)
	j.finished = true
	j.Done = j.since
	j.t.finish(j)
}

// Tree materializes the journey's span tree from the compact log: node
// 0 is the root request span, every closed segment interval and every
// annotation is a child of the root, and Follows links consecutive
// segment spans (the follows-from causal chain). Node IDs are creation
// order; the result is a pure deterministic function of the log, so two
// calls return identical trees.
func (j *Journey) Tree() []Node {
	if j == nil {
		return nil
	}
	log := j.t.chain(j.lhead)
	nodes := make([]Node, 1, len(log)+2)
	nodes[0] = Node{ID: 0, Parent: -1, Follows: -1, Start: j.Arrive, Name: j.Name}
	cur, since, last := SegQueue, j.Arrive, -1
	closeSeg := func(at sim.Time) {
		if at < since {
			at = since
		}
		if at > since {
			n := Node{
				ID: len(nodes), Parent: 0, Follows: last,
				Seg: cur, Start: since, End: at, Name: cur.String(),
			}
			nodes = append(nodes, n)
			last = n.ID
		}
		since = at
	}
	for _, e := range log {
		if e.note >= 0 {
			at := e.at
			if at < since {
				at = since
			}
			nodes = append(nodes, Node{
				ID: len(nodes), Parent: 0, Follows: -1,
				Seg: cur, Start: at, End: at, Name: j.t.noteStr(e.note),
			})
			continue
		}
		closeSeg(e.at)
		cur = Segment(-1 - e.note)
	}
	if j.finished {
		closeSeg(j.Done)
		nodes[0].End = j.Done
	}
	return nodes
}

// Finished reports whether the journey has completed.
func (j *Journey) Finished() bool { return j != nil && j.finished }

// Cur returns the segment the journey is currently in.
func (j *Journey) Cur() Segment {
	if j == nil {
		return SegQueue
	}
	return j.cur
}

// Sojourn returns Done-Arrive for a finished journey (0 otherwise).
func (j *Journey) Sojourn() sim.Duration {
	if j == nil || !j.finished {
		return 0
	}
	return j.Done.Sub(j.Arrive)
}

// Sum returns the sum of the critical-path segments. For a finished
// journey this equals Sojourn exactly — the conservation identity the
// conformance oracle checks.
func (j *Journey) Sum() sim.Duration {
	if j == nil {
		return 0
	}
	var tot sim.Duration
	for _, d := range j.Segs {
		tot += d
	}
	return tot
}
