package journey

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"

	"vessel/internal/sim"
)

// Header is the first line of the plain-text journey interchange form —
// the version handshake cmd/traceconv checks before decoding.
const Header = "# vessel-journey v1"

// Record is one journey's exportable state: the decoded interchange
// form, decoupled from the live tracer so traceconv can round-trip it.
type Record struct {
	ID       uint64
	Name     string
	Arrive   sim.Time
	Done     sim.Time
	Finished bool
	Segs     [NumSegments]sim.Duration
	Nodes    []Node
}

// Records returns the tracer's journeys as records, in mint order.
func (t *Tracer) Records() []Record {
	if t == nil {
		return nil
	}
	out := make([]Record, 0, t.minted)
	t.each(func(j *Journey) {
		out = append(out, Record{
			ID: j.ID, Name: j.Name, Arrive: j.Arrive, Done: j.Done,
			Finished: j.finished, Segs: j.Segs, Nodes: j.Tree(),
		})
	})
	return out
}

func displayName(name string) string {
	if name == "" {
		return "-"
	}
	return strings.ReplaceAll(name, " ", "_")
}

// WriteText emits the canonical plain-text journey form: the header, a
// count note carrying the flight recorder's overwrite count (so a
// truncated black box is never mistaken for a complete one), then per
// journey one "journey" line with the segment decomposition and one
// "node" line per span-tree node. Byte-deterministic given the same
// records — the golden form the on/off differential compares.
func WriteText(w io.Writer, recs []Record, flightOverwritten uint64) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, Header)
	finished := 0
	for _, r := range recs {
		if r.Finished {
			finished++
		}
	}
	fmt.Fprintf(bw, "# journeys %d finished %d flight-overwritten %d\n",
		len(recs), finished, flightOverwritten)
	for _, r := range recs {
		fin := 0
		if r.Finished {
			fin = 1
		}
		fmt.Fprintf(bw, "journey %d %d %d %d", r.ID, int64(r.Arrive), int64(r.Done), fin)
		for _, d := range r.Segs {
			fmt.Fprintf(bw, " %d", int64(d))
		}
		fmt.Fprintf(bw, " %s\n", displayName(r.Name))
		for _, n := range r.Nodes {
			end := n.End
			if end < n.Start {
				end = n.Start // unfinished root: End never set
			}
			fmt.Fprintf(bw, "node %d %d %d %d %s %d %d %s\n",
				r.ID, n.ID, n.Parent, n.Follows, n.Seg, int64(n.Start), int64(end), displayName(n.Name))
		}
	}
	return bw.Flush()
}

// WriteText is the tracer-level convenience over Records.
func (t *Tracer) WriteText(w io.Writer) error {
	return WriteText(w, t.Records(), t.Flight().Overwritten())
}

// ReadText decodes a journey export produced by WriteText, returning
// the records and the flight-recorder overwrite count from the header.
func ReadText(r io.Reader) ([]Record, uint64, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	var recs []Record
	var overwritten uint64
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if line == 1 {
			if text != Header {
				return nil, 0, fmt.Errorf("journey: not a journey export (missing %q header)", Header)
			}
			continue
		}
		if strings.HasPrefix(text, "# journeys ") {
			f := strings.Fields(text)
			// "# journeys N finished M flight-overwritten K"
			if len(f) == 7 {
				overwritten, _ = strconv.ParseUint(f[6], 10, 64)
			}
			continue
		}
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		f := strings.Fields(text)
		switch f[0] {
		case "journey":
			if len(f) != 5+int(NumSegments)+1 {
				return nil, 0, fmt.Errorf("journey: line %d: malformed journey line %q", line, text)
			}
			var rec Record
			id, err := strconv.ParseUint(f[1], 10, 64)
			if err != nil {
				return nil, 0, fmt.Errorf("journey: line %d: bad id: %v", line, err)
			}
			rec.ID = id
			arrive, err1 := strconv.ParseInt(f[2], 10, 64)
			done, err2 := strconv.ParseInt(f[3], 10, 64)
			if err1 != nil || err2 != nil {
				return nil, 0, fmt.Errorf("journey: line %d: bad times in %q", line, text)
			}
			rec.Arrive, rec.Done = sim.Time(arrive), sim.Time(done)
			rec.Finished = f[4] == "1"
			for s := 0; s < int(NumSegments); s++ {
				d, err := strconv.ParseInt(f[5+s], 10, 64)
				if err != nil {
					return nil, 0, fmt.Errorf("journey: line %d: bad segment: %v", line, err)
				}
				rec.Segs[s] = sim.Duration(d)
			}
			rec.Name = f[5+int(NumSegments)]
			if rec.Name == "-" {
				rec.Name = ""
			}
			recs = append(recs, rec)
		case "node":
			if len(f) != 9 {
				return nil, 0, fmt.Errorf("journey: line %d: malformed node line %q", line, text)
			}
			if len(recs) == 0 {
				return nil, 0, fmt.Errorf("journey: line %d: node before any journey", line)
			}
			rec := &recs[len(recs)-1]
			jid, err := strconv.ParseUint(f[1], 10, 64)
			if err != nil || jid != rec.ID {
				return nil, 0, fmt.Errorf("journey: line %d: node journey id %q does not match journey %d", line, f[1], rec.ID)
			}
			var n Node
			ints := []*int{&n.ID, &n.Parent, &n.Follows}
			for i, p := range ints {
				v, err := strconv.Atoi(f[2+i])
				if err != nil {
					return nil, 0, fmt.Errorf("journey: line %d: bad node field: %v", line, err)
				}
				*p = v
			}
			seg, err := ParseSegment(f[5])
			if err != nil {
				return nil, 0, fmt.Errorf("journey: line %d: %v", line, err)
			}
			n.Seg = seg
			start, err1 := strconv.ParseInt(f[6], 10, 64)
			end, err2 := strconv.ParseInt(f[7], 10, 64)
			if err1 != nil || err2 != nil || end < start {
				return nil, 0, fmt.Errorf("journey: line %d: bad node times in %q", line, text)
			}
			n.Start, n.End = sim.Time(start), sim.Time(end)
			n.Name = f[8]
			if n.Name == "-" {
				n.Name = ""
			}
			rec.Nodes = append(rec.Nodes, n)
		default:
			return nil, 0, fmt.Errorf("journey: line %d: unknown record %q", line, f[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, 0, err
	}
	if line == 0 {
		return nil, 0, fmt.Errorf("journey: empty export")
	}
	return recs, overwritten, nil
}

// chromeEvent is one Chrome trace-event. Journeys use "X" complete
// events for spans plus "s"/"f" flow events for the follows-from edges
// between consecutive critical-path segments. Field order is fixed by
// the struct, so the encoding is byte-deterministic.
type chromeEvent struct {
	Name string  `json:"name"`
	Cat  string  `json:"cat"`
	Ph   string  `json:"ph"`
	TS   float64 `json:"ts"`  // microseconds of virtual time
	Dur  float64 `json:"dur"` // microseconds
	PID  int     `json:"pid"`
	TID  int     `json:"tid"`
	ID   string  `json:"id,omitempty"`
	BP   string  `json:"bp,omitempty"`
}

// journeyPID groups journey tracks apart from the obs timeline's
// activity (pid 0) and overlay (pid 1) track groups.
const journeyPID = 2

// WriteChromeTrace encodes journey records as Chrome trace-event JSON:
// one track (tid = journey ID) per request, the root request span and
// its segment children as "X" events, and a flow arrow ("s" at the end
// of each segment, "f" at the start of its successor) per follows-from
// edge. Unfinished journeys contribute their closed segments only.
func WriteChromeTrace(w io.Writer, recs []Record) error {
	var events []chromeEvent
	for _, r := range recs {
		tid := int(r.ID)
		if r.Finished {
			events = append(events, chromeEvent{
				Name: displayName(r.Name), Cat: "journey", Ph: "X",
				TS: float64(r.Arrive) / 1000, Dur: float64(r.Done.Sub(r.Arrive)) / 1000,
				PID: journeyPID, TID: tid,
			})
		}
		for _, n := range r.Nodes {
			if n.ID == 0 {
				continue // root emitted above
			}
			events = append(events, chromeEvent{
				Name: displayName(n.Name), Cat: "journey." + n.Seg.String(), Ph: "X",
				TS: float64(n.Start) / 1000, Dur: float64(n.End.Sub(n.Start)) / 1000,
				PID: journeyPID, TID: tid,
			})
			if n.Follows >= 0 && n.Follows < len(r.Nodes) {
				prev := r.Nodes[n.Follows]
				flowID := fmt.Sprintf("j%d.%d", r.ID, n.ID)
				events = append(events, chromeEvent{
					Name: "follows", Cat: "journey.flow", Ph: "s",
					TS: float64(prev.End) / 1000, PID: journeyPID, TID: tid, ID: flowID,
				})
				events = append(events, chromeEvent{
					Name: "follows", Cat: "journey.flow", Ph: "f", BP: "e",
					TS: float64(n.Start) / 1000, PID: journeyPID, TID: tid, ID: flowID,
				})
			}
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(struct {
		TraceEvents []chromeEvent `json:"traceEvents"`
	}{TraceEvents: events})
}

// WriteChromeTrace is the tracer-level convenience over Records.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	return WriteChromeTrace(w, t.Records())
}

// WriteCollapsed emits per-request collapsed stacks in the
// flamegraph.pl format: "request-name;segment weight-ns", aggregated
// over finished journeys in first-touch order — so the tail's
// critical-path mix renders as a flame graph.
func WriteCollapsed(w io.Writer, recs []Record) error {
	type key struct {
		name string
		seg  Segment
	}
	idx := make(map[key]int)
	var order []key
	var weight []int64
	for _, r := range recs {
		if !r.Finished {
			continue
		}
		for s := Segment(0); s < NumSegments; s++ {
			d := r.Segs[s]
			if d <= 0 {
				continue
			}
			k := key{displayName(r.Name), s}
			i, ok := idx[k]
			if !ok {
				i = len(order)
				idx[k] = i
				order = append(order, k)
				weight = append(weight, 0)
			}
			weight[i] += int64(d)
		}
	}
	bw := bufio.NewWriter(w)
	for i, k := range order {
		fmt.Fprintf(bw, "%s;%s %d\n", k.name, k.seg, weight[i])
	}
	return bw.Flush()
}

// WriteCollapsed is the tracer-level convenience over Records.
func (t *Tracer) WriteCollapsed(w io.Writer) error {
	return WriteCollapsed(w, t.Records())
}
