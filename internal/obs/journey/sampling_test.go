package journey

import "testing"

func TestSamplingMintsOneInN(t *testing.T) {
	tr := NewTracer(Config{SampleEvery: 4})
	var live int
	for i := 0; i < 40; i++ {
		j := tr.Mint("req", us(int64(i)))
		if j != nil {
			live++
			// Sampled journeys behave normally end to end.
			j.To(SegRun, us(int64(i)+1))
			j.Finish(us(int64(i) + 2))
		} else {
			// Unsampled: nil is the no-op journey, safe to drive.
			j.To(SegRun, us(int64(i)))
			j.Annotate("ignored", us(int64(i)))
			j.Finish(us(int64(i)))
		}
	}
	if live != 10 {
		t.Fatalf("minted %d of 40, want 10", live)
	}
	seen, minted := tr.Sampled()
	if seen != 40 || minted != 10 {
		t.Fatalf("Sampled() = %d/%d, want 40/10", seen, minted)
	}
	a := tr.Analyze()
	if a.Finished != 10 || a.Unfinished != 0 {
		t.Fatalf("analysis finished=%d unfinished=%d", a.Finished, a.Unfinished)
	}
}

func TestSamplingDeterministic(t *testing.T) {
	run := func() []uint64 {
		tr := NewTracer(Config{SampleEvery: 7})
		var ids []uint64
		for i := 0; i < 100; i++ {
			if j := tr.Mint("req", us(int64(i))); j != nil {
				ids = append(ids, uint64(i))
			}
		}
		return ids
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("different sample counts: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("sample %d differs: %d vs %d", i, a[i], b[i])
		}
	}
	// The first request is always sampled (so short runs are never blind).
	if a[0] != 0 {
		t.Fatalf("first request not sampled: first=%d", a[0])
	}
}

func TestSamplingOffByDefault(t *testing.T) {
	for _, n := range []int{0, 1, -3} {
		tr := NewTracer(Config{SampleEvery: n})
		for i := 0; i < 5; i++ {
			if tr.Mint("req", us(int64(i))) == nil {
				t.Fatalf("SampleEvery=%d dropped a request", n)
			}
		}
	}
}

func TestSamplingKeepsIDsDense(t *testing.T) {
	// journeyByID indexes the arena by ID, so IDs must stay dense under
	// sampling: skipped requests consume no ID.
	tr := NewTracer(Config{SampleEvery: 3})
	var got []uint64
	for i := 0; i < 9; i++ {
		if j := tr.Mint("req", us(int64(i))); j != nil {
			got = append(got, j.ID)
		}
	}
	want := []uint64{1, 2, 3}
	if len(got) != len(want) {
		t.Fatalf("ids = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ids = %v, want %v", got, want)
		}
	}
}
