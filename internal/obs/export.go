package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"

	"vessel/internal/sim"
)

// timelineHeader is the first line of the plain-text timeline form — the
// version handshake cmd/traceconv checks before decoding.
const timelineHeader = "# vessel-obs-timeline v1"

// WriteText emits the canonical plain-text timeline: the header, an
// overwrite note, then one "span <core> <start> <end> <cat> <name>" line
// per span in the canonical sort order. This is the golden form the
// determinism tests compare byte-for-byte, and the interchange format
// cmd/traceconv decodes.
func (o *Observer) WriteText(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, timelineHeader)
	fmt.Fprintf(bw, "# spans %d overwritten %d\n", o.SpanCount(), o.Overwritten())
	for _, s := range o.Spans() {
		fmt.Fprintf(bw, "span %d %d %d %s %s\n",
			s.Core, int64(s.Start), int64(s.End), s.Cat, displayName(s.Name))
	}
	return bw.Flush()
}

// ReadText decodes a timeline produced by WriteText.
func ReadText(r io.Reader) ([]Span, error) {
	spans, _, err := ReadTextMeta(r)
	return spans, err
}

// ReadTextMeta decodes a timeline produced by WriteText and additionally
// returns the overwritten-span count from the "# spans N overwritten M"
// note, so consumers (cmd/traceconv -validate) can report a truncated
// timeline instead of treating it as complete.
func ReadTextMeta(r io.Reader) ([]Span, uint64, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	var spans []Span
	var overwritten uint64
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if line == 1 {
			if text != timelineHeader {
				return nil, 0, fmt.Errorf("obs: not a timeline (missing %q header)", timelineHeader)
			}
			continue
		}
		if text == "" || strings.HasPrefix(text, "#") {
			if f := strings.Fields(text); len(f) == 5 && f[1] == "spans" && f[3] == "overwritten" {
				if n, err := strconv.ParseUint(f[4], 10, 64); err == nil {
					overwritten = n
				}
			}
			continue
		}
		f := strings.Fields(text)
		if len(f) != 6 || f[0] != "span" {
			return nil, 0, fmt.Errorf("obs: line %d: want \"span core start end cat name\", got %q", line, text)
		}
		core, err := strconv.Atoi(f[1])
		if err != nil {
			return nil, 0, fmt.Errorf("obs: line %d: bad core: %v", line, err)
		}
		start, err := strconv.ParseInt(f[2], 10, 64)
		if err != nil {
			return nil, 0, fmt.Errorf("obs: line %d: bad start: %v", line, err)
		}
		end, err := strconv.ParseInt(f[3], 10, 64)
		if err != nil {
			return nil, 0, fmt.Errorf("obs: line %d: bad end: %v", line, err)
		}
		if end < start {
			return nil, 0, fmt.Errorf("obs: line %d: end %d before start %d", line, end, start)
		}
		cat, err := ParseCategory(f[4])
		if err != nil {
			return nil, 0, fmt.Errorf("obs: line %d: %v", line, err)
		}
		name := f[5]
		if name == "-" {
			name = ""
		}
		spans = append(spans, Span{Core: core, Start: sim.Time(start), End: sim.Time(end), Cat: cat, Name: name})
	}
	if err := sc.Err(); err != nil {
		return nil, 0, err
	}
	if line == 0 {
		return nil, 0, fmt.Errorf("obs: empty timeline")
	}
	return spans, overwritten, nil
}

// chromeEvent is one Chrome trace-event. All events are "complete" ("X")
// phases; instant markers carry dur 0. Field order is fixed by the struct,
// so the encoding is byte-deterministic.
type chromeEvent struct {
	Name string  `json:"name"`
	Cat  string  `json:"cat"`
	Ph   string  `json:"ph"`
	TS   float64 `json:"ts"`  // microseconds of virtual time
	Dur  float64 `json:"dur"` // microseconds
	PID  int     `json:"pid"`
	TID  int     `json:"tid"`
}

// Track (pid) assignment: activity spans tile pid 0 (one tid per core);
// overlay spans annotate pid 1 so Perfetto renders them as a parallel
// track group instead of fighting the activity tiling.
const (
	activityPID = 0
	overlayPID  = 1
)

// WriteChromeTrace encodes spans in the Chrome trace-event JSON format,
// loadable in Perfetto and chrome://tracing. Idle spans are omitted — the
// gaps read as idle, exactly like trace.Recorder's exporter.
func WriteChromeTrace(w io.Writer, spans []Span) error {
	events := make([]chromeEvent, 0, len(spans))
	for _, s := range spans {
		if s.Cat == CatIdle {
			continue
		}
		name := s.Cat.String()
		if s.Name != "" {
			name = s.Name + " (" + name + ")"
		}
		pid := activityPID
		if !s.Cat.Activity() {
			pid = overlayPID
		}
		events = append(events, chromeEvent{
			Name: name,
			Cat:  s.Cat.String(),
			Ph:   "X",
			TS:   float64(s.Start) / 1000,
			Dur:  float64(s.Duration()) / 1000,
			PID:  pid,
			TID:  s.Core,
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(struct {
		TraceEvents []chromeEvent `json:"traceEvents"`
	}{TraceEvents: events})
}

// WriteChromeTrace is the observer-level convenience over the recorded
// spans.
func (o *Observer) WriteChromeTrace(w io.Writer) error {
	return WriteChromeTrace(w, o.Spans())
}

// ValidateChromeTrace checks a Chrome trace-event JSON document against the
// schema subset every consumer requires: a traceEvents array whose entries
// all carry ph (string), ts (number), pid (number), tid (number), and name
// (string). An empty trace fails — a run that recorded nothing is a
// configuration error, not a valid export. This is the CI schema gate.
func ValidateChromeTrace(r io.Reader) error {
	var doc struct {
		TraceEvents []map[string]json.RawMessage `json:"traceEvents"`
	}
	dec := json.NewDecoder(r)
	if err := dec.Decode(&doc); err != nil {
		return fmt.Errorf("obs: trace is not valid JSON: %w", err)
	}
	if len(doc.TraceEvents) == 0 {
		return fmt.Errorf("obs: trace has no events")
	}
	for i, ev := range doc.TraceEvents {
		for _, key := range []string{"ph", "name"} {
			var s string
			raw, ok := ev[key]
			if !ok || json.Unmarshal(raw, &s) != nil {
				return fmt.Errorf("obs: event %d: missing or non-string %q", i, key)
			}
		}
		for _, key := range []string{"ts", "pid", "tid"} {
			var n float64
			raw, ok := ev[key]
			if !ok || json.Unmarshal(raw, &n) != nil {
				return fmt.Errorf("obs: event %d: missing or non-numeric %q", i, key)
			}
		}
	}
	return nil
}

// ganttGlyphs maps categories to timeline characters (matching the trace
// package's Figure 7 legend, extended with overlay glyphs).
func ganttGlyph(c Category) byte {
	switch c {
	case CatApp:
		return '#'
	case CatRuntime:
		return 'r'
	case CatKernel:
		return 'K'
	case CatSwitch:
		return 's'
	case CatGate:
		return 'g'
	case CatWrPkru:
		return 'w'
	case CatUintr:
		return 'u'
	case CatWatchdog:
		return '!'
	case CatRestart:
		return 'R'
	default:
		return '.'
	}
}

// WriteGantt renders a per-core ASCII gantt summary of [from, to): one
// width-character activity strip per core (dominant activity category per
// bucket) and, when overlay spans exist in the window, a second strip per
// core marking gate/wrpkru/uintr/watchdog/restart activity.
func WriteGantt(w io.Writer, spans []Span, from, to sim.Time, width int) error {
	if width <= 0 {
		width = 100
	}
	if to <= from && len(spans) > 0 {
		// Default to the spans' full range.
		from, to = spans[0].Start, spans[0].End
		for _, s := range spans {
			if s.Start < from {
				from = s.Start
			}
			if s.End > to {
				to = s.End
			}
		}
	}
	if to <= from {
		return fmt.Errorf("obs: empty gantt window")
	}
	cores := 0
	for _, s := range spans {
		if s.Core+1 > cores {
			cores = s.Core + 1
		}
	}
	bucketNs := float64(to-from) / float64(width)
	type occ struct {
		act     [NumCategories]float64
		overlay [NumCategories]float64
	}
	grid := make([][]occ, cores)
	for c := range grid {
		grid[c] = make([]occ, width)
	}
	haveOverlay := false
	for _, s := range spans {
		if s.Core < 0 || s.End <= from || s.Start >= to {
			continue
		}
		lo, hi := s.Start, s.End
		if lo < from {
			lo = from
		}
		if hi > to {
			hi = to
		}
		b0 := int(float64(lo-from) / bucketNs)
		b1 := int(float64(hi-from) / bucketNs)
		if hi > lo {
			b1 = int(float64(hi-from-1) / bucketNs)
		}
		if b0 >= width {
			b0 = width - 1
		}
		if b1 >= width {
			b1 = width - 1
		}
		for b := b0; b <= b1; b++ {
			bs := from.Add(sim.Duration(float64(b) * bucketNs))
			be := from.Add(sim.Duration(float64(b+1) * bucketNs))
			l, h := lo, hi
			if l < bs {
				l = bs
			}
			if h > be {
				h = be
			}
			weight := float64(h - l)
			if weight <= 0 {
				weight = 1 // instant markers still claim their bucket
			}
			if s.Cat.Activity() {
				grid[s.Core][b].act[s.Cat] += weight
			} else {
				grid[s.Core][b].overlay[s.Cat] += weight
				haveOverlay = true
			}
		}
	}
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "core gantt %v → %v  (#=app r=runtime K=kernel s=switch .=idle | g=gate w=wrpkru u=uintr !=watchdog R=restart)\n",
		from, to)
	for c := 0; c < cores; c++ {
		var strip, over []byte
		for b := 0; b < width; b++ {
			best, bestV := CatIdle, 0.0
			for k := Category(0); k <= CatSwitch; k++ {
				if grid[c][b].act[k] > bestV {
					bestV = grid[c][b].act[k]
					best = k
				}
			}
			strip = append(strip, ganttGlyph(best))
			oBest, oBestV := Category(0), 0.0
			for k := CatGate; k < NumCategories; k++ {
				if grid[c][b].overlay[k] > oBestV {
					oBestV = grid[c][b].overlay[k]
					oBest = k
				}
			}
			if oBestV > 0 {
				over = append(over, ganttGlyph(oBest))
			} else {
				over = append(over, ' ')
			}
		}
		fmt.Fprintf(bw, "core %2d |%s|\n", c, strip)
		if haveOverlay {
			fmt.Fprintf(bw, "        |%s|\n", over)
		}
	}
	return bw.Flush()
}

// BenchReport is the machine-readable observability summary of a run (or a
// batch of runs sharing one observer): per-category cycle totals, span and
// eviction counts, and the metrics-registry snapshot. cmd/experiments
// writes it as BENCH_obs.json — the seed of the repo's perf trajectory.
type BenchReport struct {
	ProfileNs   map[string]int64 `json:"profile_ns"`
	Spans       int              `json:"spans"`
	Overwritten uint64           `json:"overwritten"`
	Registry    Snapshot         `json:"registry"`
}

// BenchReport assembles the summary. The ProfileNs map is keyed by category
// name; encoding/json sorts map keys, so the encoding stays deterministic.
func (o *Observer) BenchReport() BenchReport {
	rep := BenchReport{
		ProfileNs:   map[string]int64{},
		Spans:       o.SpanCount(),
		Overwritten: o.Overwritten(),
		Registry:    o.Reg().Snapshot(),
	}
	totals := o.Profile().CategoryTotals()
	for c := Category(0); c < NumCategories; c++ {
		if totals[c] != 0 {
			rep.ProfileNs[c.String()] = int64(totals[c])
		}
	}
	return rep
}

// WriteBenchJSON encodes the BenchReport as indented JSON.
func (o *Observer) WriteBenchJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(o.BenchReport())
}
