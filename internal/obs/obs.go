// Package obs is the deterministic observability layer of the reproduction:
// a span timeline tracer, a cycle-attribution profiler, and a metrics
// registry, threaded through both fidelity layers (the instruction-stepped
// uProcess machine and the discrete-event scheduling simulators).
//
// Three design rules govern everything here:
//
//   - Determinism. All timestamps are virtual time. Recording order is the
//     simulation's own order, every renderer sorts or iterates in a fixed
//     order, and no wall-clock or map-iteration nondeterminism can reach an
//     export. Two runs with the same seed produce byte-identical timelines,
//     profiles, and Chrome traces — the goldens in export_test.go hold this.
//   - Near-zero cost when disabled. Every method is safe on a nil *Observer
//     and returns immediately; instrumentation sites call through without
//     guarding. The vessel bench guard (internal/vessel/bench_test.go)
//     keeps the disabled path under 2% of the uninstrumented baseline.
//   - Bounded memory. Spans land in fixed-capacity per-core rings allocated
//     once; when a ring is full the oldest span is overwritten and counted,
//     never silently lost.
package obs

import (
	"fmt"
	"sort"

	"vessel/internal/sim"
)

// Category classifies a span (and a profiler bucket). The first five
// categories mirror sched.Activity and partition core time — the
// conservation oracle in internal/conformance checks that exactly these sum
// to the run's total simulated cycles. The remaining categories are overlay
// spans (gate crossings, WRPKRU writes, Uintr flight, watchdog kills,
// supervised restarts) that annotate the timeline without being part of the
// partition.
type Category uint8

const (
	CatIdle Category = iota
	CatApp
	CatRuntime
	CatKernel
	CatSwitch
	// Overlay categories below: not part of the core-time partition.
	CatGate
	CatWrPkru
	CatUintr
	CatWatchdog
	CatRestart
	// Self-healing overlays: core fencing, supervised domain recovery,
	// and failsafe policy takeovers.
	CatFence
	CatRecover
	CatFailsafe
	// Virtualized protection keys: slot evictions and refills with their
	// lazy re-tag work.
	CatVPkey
	// Two-level cluster scheduling overlays: core grant/revoke upcall
	// delivery (CatUpcall) and the span a core spends leaving one domain
	// and entering another (CatGrant).
	CatUpcall
	CatGrant
	NumCategories
)

// Activity reports whether the category is one of the five that partition
// core time (the conservation set).
func (c Category) Activity() bool { return c <= CatSwitch }

func (c Category) String() string {
	switch c {
	case CatIdle:
		return "idle"
	case CatApp:
		return "app"
	case CatRuntime:
		return "runtime"
	case CatKernel:
		return "kernel"
	case CatSwitch:
		return "switch"
	case CatGate:
		return "gate"
	case CatWrPkru:
		return "wrpkru"
	case CatUintr:
		return "uintr"
	case CatWatchdog:
		return "watchdog"
	case CatRestart:
		return "restart"
	case CatFence:
		return "fence"
	case CatRecover:
		return "recover"
	case CatFailsafe:
		return "failsafe"
	case CatVPkey:
		return "vpkey"
	case CatUpcall:
		return "upcall"
	case CatGrant:
		return "grant"
	default:
		return fmt.Sprintf("Category(%d)", uint8(c))
	}
}

// ParseCategory is the inverse of String, used by the timeline decoder.
func ParseCategory(s string) (Category, error) {
	for c := Category(0); c < NumCategories; c++ {
		if c.String() == s {
			return c, nil
		}
	}
	return 0, fmt.Errorf("obs: unknown category %q", s)
}

// Span is one begin/end interval in virtual time on one core. A zero-length
// span (End == Start) is an instant marker (a watchdog kill, a dropped
// Uintr).
type Span struct {
	Core  int
	Start sim.Time
	End   sim.Time
	Cat   Category
	// Name names the occupant or subject: an app or uProcess name, a gate
	// function, an event detail. Empty renders as "-".
	Name string
}

// Duration returns the span length.
func (s Span) Duration() sim.Duration { return s.End.Sub(s.Start) }

// ring is a fixed-capacity per-core span buffer: allocated once, oldest
// span overwritten when full.
type ring struct {
	spans []Span
	next  int
	full  bool
	// open is the Begin/End stack (small, preallocated).
	open []Span
	// uintrPending marks an in-flight deferred Uintr delivery window.
	uintrPending  bool
	uintrSince    sim.Time
	overwritten   uint64
	openOverflows uint64
}

func (r *ring) add(s Span) {
	if r.full {
		r.overwritten++ // the slot about to be reused still holds a span
	}
	r.spans[r.next] = s
	r.next++
	if r.next == len(r.spans) {
		r.next = 0
		r.full = true
	}
}

// snapshot appends the ring's retained spans in recording order.
func (r *ring) snapshot(out []Span) []Span {
	if r.full {
		out = append(out, r.spans[r.next:]...)
		return append(out, r.spans[:r.next]...)
	}
	return append(out, r.spans[:r.next]...)
}

const (
	// DefaultPerCore is the default per-core ring capacity.
	DefaultPerCore = 1 << 13
	maxOpenDepth   = 16
)

// Observer is the recording hub: per-core span rings, the cycle-attribution
// profiler, and the metrics registry. The zero observer (nil) is the
// disabled state: every method returns immediately.
//
// An Observer is single-writer by design, exactly like the simulation
// engines that feed it; the registry it owns is independently safe for
// concurrent use (it wraps stats.Counters).
type Observer struct {
	perCore int
	rings   []*ring
	prof    Profiler
	reg     *Registry
}

// New returns an enabled observer whose per-core rings hold perCore spans
// each (perCore ≤ 0 selects DefaultPerCore). Rings are allocated lazily, on
// the first span a core records, and never again after that.
func New(perCore int) *Observer {
	if perCore <= 0 {
		perCore = DefaultPerCore
	}
	return &Observer{perCore: perCore, reg: NewRegistry()}
}

// Enabled reports whether the observer records anything.
func (o *Observer) Enabled() bool { return o != nil }

// Reg returns the observer's metrics registry (nil when disabled; the
// registry's methods are themselves nil-safe, so chained calls like
// o.Reg().Inc(...) cost one pointer test when observability is off).
func (o *Observer) Reg() *Registry {
	if o == nil {
		return nil
	}
	return o.reg
}

// Profile returns the cycle-attribution profiler (nil when disabled).
func (o *Observer) Profile() *Profiler {
	if o == nil {
		return nil
	}
	return &o.prof
}

// coreRing returns (allocating on first use) the ring for a core.
func (o *Observer) coreRing(core int) *ring {
	if core < 0 {
		core = 0
	}
	for core >= len(o.rings) {
		o.rings = append(o.rings, nil)
	}
	if o.rings[core] == nil {
		o.rings[core] = &ring{
			spans: make([]Span, o.perCore),
			open:  make([]Span, 0, maxOpenDepth),
		}
	}
	return o.rings[core]
}

// Span records one closed interval. Negative-length spans (fault-rewind
// callers) are clamped to instant markers at start and counted under
// obs.charge.clamped rather than corrupting the timeline; zero-length
// spans are kept as instant markers.
func (o *Observer) Span(core int, start, end sim.Time, cat Category, name string) {
	if o == nil {
		return
	}
	if end < start {
		end = start
		o.reg.Inc("obs.charge.clamped")
	}
	o.coreRing(core).add(Span{Core: core, Start: start, End: end, Cat: cat, Name: name})
}

// Mark records an instant marker (a zero-length span).
func (o *Observer) Mark(core int, at sim.Time, cat Category, name string) {
	o.Span(core, at, at, cat, name)
}

// Begin opens an interval on the core's span stack; the matching End closes
// it. Intervals nest LIFO per core; opening deeper than the fixed stack
// depth drops the innermost spans (counted, never silent).
func (o *Observer) Begin(core int, at sim.Time, cat Category, name string) {
	if o == nil {
		return
	}
	r := o.coreRing(core)
	if len(r.open) == cap(r.open) {
		r.openOverflows++
		return
	}
	r.open = append(r.open, Span{Core: core, Start: at, Cat: cat, Name: name})
}

// End closes the innermost open interval on the core, recording it with the
// given end time. An End with no matching Begin is a no-op.
func (o *Observer) End(core int, at sim.Time) {
	if o == nil {
		return
	}
	r := o.coreRing(core)
	if len(r.open) == 0 {
		return
	}
	s := r.open[len(r.open)-1]
	r.open = r.open[:len(r.open)-1]
	s.End = at
	if s.End < s.Start {
		s.End = s.Start
	}
	r.add(s)
}

// Charge adds d to the profiler bucket (core, name, cat). The scheduling
// accountant calls this with window-clipped durations so the profile obeys
// the conservation law; overlay spans are recorded but never charged. A
// negative charge (fault-rewind callers) is clamped to zero — counted
// under obs.charge.clamped instead of corrupting the conservation totals.
func (o *Observer) Charge(core int, name string, cat Category, d sim.Duration) {
	if o == nil || d == 0 {
		return
	}
	if d < 0 {
		o.reg.Inc("obs.charge.clamped")
		return
	}
	o.prof.charge(core, name, cat, d)
}

// UintrDeferred opens the deferred-delivery window of a user interrupt
// whose receiver (conventionally tracked by its core id) was descheduled or
// suppressed at SENDUIPI time. Subsequent deferred posts to the same
// receiver fold into the one open window, mirroring the UPID's PIR bitmap.
func (o *Observer) UintrDeferred(core int, at sim.Time) {
	if o == nil {
		return
	}
	r := o.coreRing(core)
	if !r.uintrPending {
		r.uintrPending = true
		r.uintrSince = at
	}
}

// UintrFlush closes a pending deferred-delivery window: the receiver
// reattached and its posted vectors reached the handler. Without a pending
// window it is a no-op.
func (o *Observer) UintrFlush(core int, at sim.Time) {
	if o == nil {
		return
	}
	r := o.coreRing(core)
	if !r.uintrPending {
		return
	}
	r.uintrPending = false
	if at < r.uintrSince {
		at = r.uintrSince
	}
	r.add(Span{Core: core, Start: r.uintrSince, End: at, Cat: CatUintr, Name: "uintr.deferred"})
}

// Spans returns every retained span, sorted by (Start, Core, End, Cat,
// Name) — the canonical export order. The sort is stable over each ring's
// recording order, so the result is a pure function of the recorded
// sequence.
func (o *Observer) Spans() []Span {
	if o == nil {
		return nil
	}
	var out []Span
	for _, r := range o.rings {
		if r != nil {
			out = r.snapshot(out)
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Start != b.Start {
			return a.Start < b.Start
		}
		if a.Core != b.Core {
			return a.Core < b.Core
		}
		if a.End != b.End {
			return a.End < b.End
		}
		if a.Cat != b.Cat {
			return a.Cat < b.Cat
		}
		return a.Name < b.Name
	})
	return out
}

// Overwritten returns how many spans were evicted by ring wraparound,
// summed over cores — reported by every exporter so a truncated timeline is
// never mistaken for a complete one.
func (o *Observer) Overwritten() uint64 {
	if o == nil {
		return 0
	}
	var n uint64
	for _, r := range o.rings {
		if r != nil {
			n += r.overwritten
		}
	}
	return n
}

// SpanCount returns the number of retained spans.
func (o *Observer) SpanCount() int {
	if o == nil {
		return 0
	}
	n := 0
	for _, r := range o.rings {
		if r == nil {
			continue
		}
		if r.full {
			n += len(r.spans)
		} else {
			n += r.next
		}
	}
	return n
}
