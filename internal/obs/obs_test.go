package obs

import (
	"bytes"
	"strings"
	"testing"

	"vessel/internal/sim"
)

func TestNilObserverIsSafe(t *testing.T) {
	var o *Observer
	if o.Enabled() {
		t.Fatal("nil observer reports enabled")
	}
	o.Span(0, 0, 10, CatApp, "x")
	o.Mark(1, 5, CatGate, "g")
	o.Begin(2, 0, CatRuntime, "r")
	o.End(2, 3)
	o.Charge(0, "x", CatApp, 10)
	o.UintrDeferred(0, 1)
	o.UintrFlush(0, 2)
	if o.Spans() != nil || o.SpanCount() != 0 || o.Overwritten() != 0 {
		t.Fatal("nil observer retained state")
	}
	if o.Reg() != nil || o.Profile() != nil {
		t.Fatal("nil observer handed out live components")
	}
	// The components themselves must also be nil-safe, so chained calls
	// like o.Reg().Inc(...) work disabled.
	o.Reg().Inc("c")
	o.Reg().Observe("h", 1)
	if got := o.Reg().Counter("c"); got != 0 {
		t.Fatalf("nil registry counter = %d", got)
	}
	if o.Profile().Get(0, "x", CatApp) != 0 {
		t.Fatal("nil profiler returned non-zero")
	}
	if o.Profile().ActivityTotal() != 0 {
		t.Fatal("nil profiler activity total non-zero")
	}
	if s := o.Profile().Table(5); s == "" {
		t.Fatal("nil profiler table empty string expected non-empty header")
	}
}

func TestCategoryStringRoundTrip(t *testing.T) {
	for c := Category(0); c < NumCategories; c++ {
		got, err := ParseCategory(c.String())
		if err != nil || got != c {
			t.Fatalf("ParseCategory(%q) = %v, %v", c.String(), got, err)
		}
	}
	if _, err := ParseCategory("bogus"); err == nil {
		t.Fatal("ParseCategory accepted junk")
	}
	if !CatSwitch.Activity() || CatGate.Activity() {
		t.Fatal("activity boundary wrong")
	}
}

func TestSpanRecordingAndCanonicalOrder(t *testing.T) {
	o := New(16)
	// Record out of order across cores; Spans must come back sorted by
	// (Start, Core, End, Cat, Name).
	o.Span(1, 50, 60, CatApp, "b")
	o.Span(0, 50, 55, CatRuntime, "a")
	o.Span(0, 10, 20, CatApp, "a")
	o.Mark(2, 50, CatGate, "g")
	spans := o.Spans()
	if len(spans) != 4 {
		t.Fatalf("got %d spans", len(spans))
	}
	if spans[0].Start != 10 || spans[1].Core != 0 || spans[2].Core != 1 || spans[3].Core != 2 {
		t.Fatalf("order wrong: %+v", spans)
	}
	// Negative-length spans are clamped to instant markers, not dropped.
	o.Span(0, 30, 20, CatApp, "neg")
	if o.SpanCount() != 5 {
		t.Fatal("negative span not retained as a clamped marker")
	}
}

func TestRingOverwriteCounted(t *testing.T) {
	o := New(4)
	for i := 0; i < 10; i++ {
		o.Span(0, sim.Time(i), sim.Time(i+1), CatApp, "x")
	}
	if o.SpanCount() != 4 {
		t.Fatalf("retained %d spans, ring holds 4", o.SpanCount())
	}
	if o.Overwritten() != 6 {
		t.Fatalf("overwritten = %d, want 6", o.Overwritten())
	}
	// Retained spans are the newest 4.
	spans := o.Spans()
	if spans[0].Start != 6 || spans[3].Start != 9 {
		t.Fatalf("ring kept wrong spans: %+v", spans)
	}
}

func TestBeginEndNesting(t *testing.T) {
	o := New(16)
	o.Begin(0, 10, CatGate, "outer")
	o.Begin(0, 12, CatWrPkru, "inner")
	o.End(0, 13)
	o.End(0, 20)
	spans := o.Spans()
	if len(spans) != 2 {
		t.Fatalf("got %d spans", len(spans))
	}
	if spans[0] != (Span{Core: 0, Start: 10, End: 20, Cat: CatGate, Name: "outer"}) {
		t.Fatalf("outer = %+v", spans[0])
	}
	if spans[1] != (Span{Core: 0, Start: 12, End: 13, Cat: CatWrPkru, Name: "inner"}) {
		t.Fatalf("inner = %+v", spans[1])
	}
	// Unmatched End is a no-op.
	o.End(0, 99)
	if o.SpanCount() != 2 {
		t.Fatal("unmatched End recorded a span")
	}
}

func TestUintrDeferredWindowFolds(t *testing.T) {
	o := New(16)
	o.UintrDeferred(3, 100)
	o.UintrDeferred(3, 150) // folds into the open window
	o.UintrFlush(3, 200)
	o.UintrFlush(3, 250) // no window: no-op
	spans := o.Spans()
	if len(spans) != 1 {
		t.Fatalf("got %d spans", len(spans))
	}
	want := Span{Core: 3, Start: 100, End: 200, Cat: CatUintr, Name: "uintr.deferred"}
	if spans[0] != want {
		t.Fatalf("window = %+v, want %+v", spans[0], want)
	}
}

func TestProfilerConservationShape(t *testing.T) {
	o := New(16)
	o.Charge(0, "mc", CatApp, 700)
	o.Charge(0, "mc", CatApp, 50) // accumulates
	o.Charge(0, "", CatIdle, 250)
	o.Charge(1, "batch", CatRuntime, 500)
	o.Charge(1, "", CatWrPkru, 42) // overlay: excluded from activity total
	p := o.Profile()
	if got := p.Get(0, "mc", CatApp); got != 750 {
		t.Fatalf("bucket = %d", got)
	}
	if got := p.ActivityTotal(); got != 1500 {
		t.Fatalf("activity total = %d, want 1500", got)
	}
	totals := p.CategoryTotals()
	if totals[CatWrPkru] != 42 {
		t.Fatalf("overlay total = %d", totals[CatWrPkru])
	}
	table := p.Table(2)
	if !strings.Contains(table, "mc") || !strings.Contains(table, "... 2 more buckets") {
		t.Fatalf("table:\n%s", table)
	}
	collapsed := p.Collapsed()
	want := "core0;-;idle 250\ncore0;mc;app 750\ncore1;-;wrpkru 42\ncore1;batch;runtime 500\n"
	if collapsed != want {
		t.Fatalf("collapsed:\n%s\nwant:\n%s", collapsed, want)
	}
}

func TestFromSpansMatchesCollapsed(t *testing.T) {
	spans := []Span{
		{Core: 0, Start: 0, End: 10, Cat: CatApp, Name: "a"},
		{Core: 0, Start: 10, End: 12, Cat: CatSwitch, Name: ""},
		{Core: 0, Start: 20, End: 20, Cat: CatGate, Name: "instant"}, // zero-length: not charged
	}
	p := FromSpans(spans)
	if p.Get(0, "a", CatApp) != 10 || p.Get(0, "", CatSwitch) != 2 {
		t.Fatal("FromSpans charged wrong durations")
	}
	if p.Get(0, "instant", CatGate) != 0 {
		t.Fatal("zero-length span charged")
	}
}

func TestRegistrySnapshotDeterministic(t *testing.T) {
	r := NewRegistry()
	r.Inc("b")
	r.Add("a", 5)
	r.Inc("b")
	r.Observe("lat", 100)
	r.Observe("lat", 200)
	snap := r.Snapshot()
	if len(snap.Counters) != 2 || snap.Counters[0].Name != "b" || snap.Counters[0].Value != 2 {
		t.Fatalf("counters = %+v", snap.Counters)
	}
	if len(snap.Hists) != 1 || snap.Hists[0].Name != "lat" || snap.Hists[0].Summary.Count != 2 {
		t.Fatalf("hists = %+v", snap.Hists)
	}
	if s := snap.String(); !strings.HasPrefix(s, "b=2\na=5\nlat: ") {
		t.Fatalf("rendering:\n%s", s)
	}
	if got := r.Counter("a"); got != 5 {
		t.Fatalf("Counter = %d", got)
	}
}

func TestTextRoundTrip(t *testing.T) {
	o := New(16)
	o.Span(0, 10, 20, CatApp, "mc")
	o.Span(1, 15, 30, CatRuntime, "")
	o.Mark(0, 25, CatWatchdog, "watchdog:mc")
	var buf bytes.Buffer
	if err := o.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	spans, err := ReadText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want := o.Spans()
	if len(spans) != len(want) {
		t.Fatalf("round trip lost spans: %d vs %d", len(spans), len(want))
	}
	for i := range spans {
		if spans[i] != want[i] {
			t.Fatalf("span %d: %+v != %+v", i, spans[i], want[i])
		}
	}
	// Decoder rejects junk.
	if _, err := ReadText(strings.NewReader("not a timeline\n")); err == nil {
		t.Fatal("decoder accepted junk header")
	}
	if _, err := ReadText(strings.NewReader(timelineHeader + "\nspan 0 5 1 app x\n")); err == nil {
		t.Fatal("decoder accepted end<start")
	}
}

func TestChromeTraceValidates(t *testing.T) {
	o := New(16)
	o.Span(0, 1000, 2000, CatApp, "mc")
	o.Span(0, 0, 3000, CatIdle, "") // idle: omitted from export
	o.Mark(1, 1500, CatGate, "park")
	var buf bytes.Buffer
	if err := o.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if strings.Contains(out, "idle") {
		t.Fatalf("idle span exported:\n%s", out)
	}
	if err := ValidateChromeTrace(strings.NewReader(out)); err != nil {
		t.Fatalf("own export fails validation: %v", err)
	}
	// The validator rejects structurally broken documents.
	for _, bad := range []string{
		`{}`,
		`{"traceEvents":[]}`,
		`{"traceEvents":[{"name":"x","ts":1,"pid":0,"tid":0}]}`,            // no ph
		`{"traceEvents":[{"name":"x","ph":"X","ts":"q","pid":0,"tid":0}]}`, // ts not a number
		`not json`,
	} {
		if err := ValidateChromeTrace(strings.NewReader(bad)); err == nil {
			t.Fatalf("validator accepted %s", bad)
		}
	}
}

func TestGanttRenders(t *testing.T) {
	spans := []Span{
		{Core: 0, Start: 0, End: 500, Cat: CatApp, Name: "mc"},
		{Core: 0, Start: 500, End: 1000, Cat: CatIdle},
		{Core: 1, Start: 0, End: 1000, Cat: CatRuntime},
		{Core: 1, Start: 200, End: 300, Cat: CatUintr, Name: "uintr.deferred"},
	}
	var buf bytes.Buffer
	if err := WriteGantt(&buf, spans, 0, 0, 20); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "core  0 |") || !strings.Contains(out, "core  1 |") {
		t.Fatalf("gantt:\n%s", out)
	}
	if !strings.Contains(out, "#") || !strings.Contains(out, "r") || !strings.Contains(out, "u") {
		t.Fatalf("gantt missing glyphs:\n%s", out)
	}
	if err := WriteGantt(&buf, nil, 0, 0, 20); err == nil {
		t.Fatal("empty gantt did not error")
	}
}

func TestBenchReportJSON(t *testing.T) {
	o := New(16)
	o.Span(0, 0, 10, CatApp, "a")
	o.Charge(0, "a", CatApp, 10)
	o.Reg().Inc("runs")
	var buf bytes.Buffer
	if err := o.WriteBenchJSON(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{`"profile_ns"`, `"app": 10`, `"spans": 1`, `"runs"`} {
		if !strings.Contains(out, want) {
			t.Fatalf("bench json missing %s:\n%s", want, out)
		}
	}
}

// TestSpanClampNegative pins the negative-span guard: a span whose end
// precedes its start (a fault-rewind caller) is clamped to an instant
// marker at start and counted under obs.charge.clamped, while legitimate
// zero-length instant markers pass through uncounted.
func TestSpanClampNegative(t *testing.T) {
	o := New(8)
	o.Span(0, 100, 40, CatApp, "rewind")
	spans := o.Spans()
	if len(spans) != 1 {
		t.Fatalf("got %d spans, want 1", len(spans))
	}
	if s := spans[0]; s.Start != 100 || s.End != 100 {
		t.Fatalf("clamped span = [%d,%d], want instant marker at 100", s.Start, s.End)
	}
	if got := o.Reg().Counter("obs.charge.clamped"); got != 1 {
		t.Fatalf("obs.charge.clamped = %d after negative span, want 1", got)
	}
	o.Span(0, 200, 200, CatApp, "marker") // zero-length: legal, not clamped
	if got := o.Reg().Counter("obs.charge.clamped"); got != 1 {
		t.Fatalf("obs.charge.clamped = %d after instant marker, want still 1", got)
	}
	if n := o.SpanCount(); n != 2 {
		t.Fatalf("span count = %d, want 2", n)
	}
}

// TestChargeClampNegative pins the profiler-side guard: a negative charge
// is dropped (counted, never subtracted), a zero charge is a silent no-op,
// and positive charges accumulate normally afterwards.
func TestChargeClampNegative(t *testing.T) {
	o := New(8)
	o.Charge(0, "x", CatApp, -5)
	if d := o.Profile().Get(0, "x", CatApp); d != 0 {
		t.Fatalf("negative charge leaked %d into the profile", d)
	}
	if got := o.Reg().Counter("obs.charge.clamped"); got != 1 {
		t.Fatalf("obs.charge.clamped = %d after negative charge, want 1", got)
	}
	o.Charge(0, "x", CatApp, 0) // zero: neither charged nor clamped
	if got := o.Reg().Counter("obs.charge.clamped"); got != 1 {
		t.Fatalf("obs.charge.clamped = %d after zero charge, want still 1", got)
	}
	o.Charge(0, "x", CatApp, 7)
	if d := o.Profile().Get(0, "x", CatApp); d != 7 {
		t.Fatalf("profile bucket = %d after valid charge, want 7", d)
	}
	if got := o.Reg().Counter("obs.charge.clamped"); got != 1 {
		t.Fatalf("obs.charge.clamped = %d at end, want 1", got)
	}
}
