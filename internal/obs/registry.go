package obs

import (
	"sync"

	"vessel/internal/stats"
)

// Registry unifies the repo's two metric primitives — stats.Counters and
// stats histograms — behind one deterministic snapshot type. Counters and
// histograms are registered implicitly on first touch and keep insertion
// order, so a snapshot's rendering is a pure function of the sequence of
// recordings (the same contract stats.Counters already gives).
//
// Registry methods are nil-safe (a disabled observer hands out a nil
// registry) and safe for concurrent use.
type Registry struct {
	mu       sync.Mutex
	counters *stats.Counters
	histName []string
	hists    map[string]*stats.Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{counters: stats.NewCounters(), hists: make(map[string]*stats.Histogram)}
}

// Inc adds one to the named counter.
func (r *Registry) Inc(name string) { r.Add(name, 1) }

// Add adds n to the named counter.
func (r *Registry) Add(name string, n uint64) {
	if r == nil {
		return
	}
	r.counters.Add(name, n)
}

// Counter returns the named counter's current value.
func (r *Registry) Counter(name string) uint64 {
	if r == nil {
		return 0
	}
	return r.counters.Get(name)
}

// Hist returns the named histogram's live handle, creating it on first
// use — the hot-path form of Observe: resolve the name once at setup,
// then Record on the handle without a per-sample lock and map lookup.
func (r *Registry) Hist(name string) *stats.Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = stats.NewHistogram()
		r.hists[name] = h
		r.histName = append(r.histName, name)
	}
	return h
}

// Observe records one sample into the named histogram, creating it on first
// use.
func (r *Registry) Observe(name string, v int64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	h, ok := r.hists[name]
	if !ok {
		h = stats.NewHistogram()
		r.hists[name] = h
		r.histName = append(r.histName, name)
	}
	r.mu.Unlock()
	h.Record(v)
}

// HistSnapshot is one histogram's summarized state.
type HistSnapshot struct {
	Name    string        `json:"name"`
	Summary stats.Summary `json:"summary"`
}

// Snapshot is the registry's full state at one instant: counters and
// histogram summaries, each in insertion order.
type Snapshot struct {
	Counters []stats.KV     `json:"counters"`
	Hists    []HistSnapshot `json:"hists,omitempty"`
}

// Snapshot captures counters (one lock acquisition, via
// stats.Counters.Snapshot) and histogram summaries in insertion order.
func (r *Registry) Snapshot() Snapshot {
	if r == nil {
		return Snapshot{}
	}
	snap := Snapshot{Counters: r.counters.Snapshot()}
	r.mu.Lock()
	names := make([]string, len(r.histName))
	copy(names, r.histName)
	hists := make([]*stats.Histogram, len(names))
	for i, n := range names {
		hists[i] = r.hists[n]
	}
	r.mu.Unlock()
	for i, n := range names {
		snap.Hists = append(snap.Hists, HistSnapshot{Name: n, Summary: hists[i].Summarize()})
	}
	return snap
}

// String renders "name=value" counter lines then "name: summary" histogram
// lines, in insertion order — the deterministic fingerprint form.
func (s Snapshot) String() string {
	var b []byte
	for _, kv := range s.Counters {
		b = append(b, kv.Name...)
		b = append(b, '=')
		b = appendUint(b, kv.Value)
		b = append(b, '\n')
	}
	for _, h := range s.Hists {
		b = append(b, h.Name...)
		b = append(b, ':', ' ')
		b = append(b, h.Summary.String()...)
		b = append(b, '\n')
	}
	return string(b)
}

func appendUint(b []byte, v uint64) []byte {
	if v == 0 {
		return append(b, '0')
	}
	var tmp [20]byte
	i := len(tmp)
	for v > 0 {
		i--
		tmp[i] = byte('0' + v%10)
		v /= 10
	}
	return append(b, tmp[i:]...)
}
