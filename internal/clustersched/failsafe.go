package clustersched

// Failsafe is the cluster-scope twin of selfheal.Failsafe: the policy
// fault-isolation boundary of the ghOSt model. A cluster policy that
// panics or blows its per-decision cycle budget is killed and replaced
// — one-way — by the minimal Static fallback, so no policy bug can stop
// core scheduling. It implements faultinject.PolicyTarget, which is how
// the chaos harness's ClusterPolicyPanic faults reach it.

import (
	"fmt"
	"sync"
)

// Failsafe wraps a cluster policy with panic recovery and a
// per-decision cycle budget, swapping one-way to Static on the first
// violation. All methods are safe for concurrent use.
type Failsafe struct {
	mu       sync.Mutex
	primary  Policy
	fallback Policy
	// budget is the per-decision cycle ceiling; 0 disables the check.
	budget  int64
	swapped bool
	reason  string
	// armPanic / armBurn are the fault injector's pending attacks on the
	// next decision.
	armPanic bool
	armBurn  int64
	// Panics counts recovered policy panics; Overruns counts decisions
	// that blew the cycle budget. At most one ever reaches 1 — the swap
	// happens on the first violation.
	Panics   uint64
	Overruns uint64
	// OnSwap, when non-nil, observes the takeover. Invoked with the lock
	// held, exactly once; it must not call back into the Failsafe.
	OnSwap func(reason string)
}

// NewFailsafe wraps primary with the Static fallback and the given
// per-decision cycle budget (0 disables the budget check).
func NewFailsafe(primary Policy, budgetCycles int64) *Failsafe {
	if primary == nil {
		primary = Static{}
	}
	return &Failsafe{primary: primary, fallback: Static{}, budget: budgetCycles}
}

// Name implements Policy.
func (f *Failsafe) Name() string {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.swapped {
		return fmt.Sprintf("failsafe[%s]", f.fallback.Name())
	}
	return fmt.Sprintf("failsafe(%s)", f.primary.Name())
}

// Decide implements Policy. A primary that panics or decides past the
// budget is swapped for the fallback, whose transaction is returned; a
// budget-blowing decision's cycles are still charged (the damage was
// done once), the swap guarantees it never recurs.
func (f *Failsafe) Decide(v View) Txn {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.swapped {
		return f.fallback.Decide(v)
	}
	txn, ok := f.tryPrimary(v)
	if !ok {
		f.Panics++
		f.swapLocked("panic")
		return f.fallback.Decide(v)
	}
	if f.armBurn > 0 {
		txn.CostCycles += f.armBurn
		f.armBurn = 0
	}
	if f.budget > 0 && txn.CostCycles > f.budget {
		f.Overruns++
		f.swapLocked(fmt.Sprintf("budget cost=%d limit=%d", txn.CostCycles, f.budget))
		fb := f.fallback.Decide(v)
		fb.CostCycles += txn.CostCycles
		return fb
	}
	return txn
}

// tryPrimary runs the primary's decision under panic recovery.
func (f *Failsafe) tryPrimary(v View) (txn Txn, ok bool) {
	defer func() {
		if recover() != nil {
			ok = false
		}
	}()
	if f.armPanic {
		f.armPanic = false
		panic("clustersched: injected policy panic")
	}
	return f.primary.Decide(v), true
}

// swapLocked performs the one-way takeover. Callers hold f.mu.
func (f *Failsafe) swapLocked(reason string) {
	f.swapped = true
	f.reason = reason
	if f.OnSwap != nil {
		f.OnSwap(reason)
	}
}

// Swapped reports whether the fallback has taken over, and why.
func (f *Failsafe) Swapped() (bool, string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.swapped, f.reason
}

// InjectPanic implements faultinject.PolicyTarget: the next decision
// panics inside the primary.
func (f *Failsafe) InjectPanic() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.armPanic = true
}

// InjectBurn implements faultinject.PolicyTarget: the next decision is
// charged the given extra cycles, blowing the budget if one is set.
func (f *Failsafe) InjectBurn(cycles int64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.armBurn += cycles
}
