// Package clustersched is the cluster's two-level core scheduler: the
// coarse-grained mechanism layer of the NRK model (domains request and
// yield cores; the cluster answers with deterministic CoreGranted /
// CoreRevoked upcalls delivered at domain step boundaries in virtual
// time) with a ghOSt-style pluggable policy layer on top (scheduling
// decisions are *transactions* — a proposed set of grant/revoke moves,
// of which the cluster commits only those still valid against the live
// core ledger, reporting per-move commit/fail).
//
// Three rules govern the package, the same three as the rest of the
// reproduction:
//
//   - Determinism. The ledger, the upcall queues, and every policy
//     shipped here iterate in fixed order over virtual time; identical
//     runs produce byte-identical Report.Canonical output (the
//     conformance oracle CheckClusterSched re-derives the invariants
//     from the report alone).
//   - No double-grant, ever. A core is owned by at most one domain. A
//     grant committed for a core whose previous owner has not yet
//     actuated the matching revoke upcall is *held back* (head-of-line
//     in the grantee's upcall queue) until the revoke is delivered, so
//     a core can never be online in two domains at once.
//   - Fault isolation. The policy runs behind a Failsafe wrapper
//     (failsafe.go): a panicking or budget-blowing policy is swapped
//     one-way for the minimal static fallback, and the swap is visible
//     in the report and the event log.
package clustersched

import (
	"fmt"

	"vessel/internal/sim"
	"vessel/internal/stats"
	"vessel/internal/trace"
)

// Topology is the simple core→NUMA-node map the executor caches key off:
// cores are split into contiguous nodes of CoresPerNode each.
type Topology struct {
	Cores        int
	CoresPerNode int
}

// Node maps a core to its NUMA node.
func (t Topology) Node(core int) int {
	if t.CoresPerNode <= 0 {
		return 0
	}
	return core / t.CoresPerNode
}

// Nodes returns the node count.
func (t Topology) Nodes() int {
	if t.CoresPerNode <= 0 || t.Cores <= 0 {
		return 1
	}
	return (t.Cores + t.CoresPerNode - 1) / t.CoresPerNode
}

// MoveKind is the type of one transaction move.
type MoveKind uint8

const (
	// Grant assigns a free core to a domain.
	Grant MoveKind = iota
	// Revoke takes a core back from its owning domain.
	Revoke
)

func (k MoveKind) String() string {
	switch k {
	case Grant:
		return "grant"
	case Revoke:
		return "revoke"
	default:
		return fmt.Sprintf("MoveKind(%d)", uint8(k))
	}
}

// Move is one proposed ledger change: grant Core to Domain, or revoke
// Core from Domain.
type Move struct {
	Kind   MoveKind
	Domain int
	Core   int
}

// Txn is a policy decision: a set of moves validated and committed *in
// order* against the live ledger — a revoke earlier in the transaction
// frees its core for a grant later in the same transaction. CostCycles
// models the decision's own cost and is charged against the failsafe's
// per-decision budget.
type Txn struct {
	Moves      []Move
	CostCycles int64
}

// MoveStatus is the per-move commit verdict of a transaction.
type MoveStatus struct {
	Move
	OK bool
	// Reason explains a refusal ("owned", "fenced", "last-core", ...).
	Reason string
}

// TxnResult reports what a transaction actually did.
type TxnResult struct {
	Seq       int
	At        sim.Time
	Policy    string
	Moves     []MoveStatus
	Committed int
	Failed    int
}

// Op is one committed ledger operation, in commit order — the record the
// conformance oracle replays. Delivered/DeliveredAt track the actuation:
// the upcall reaching the domain at a step boundary.
type Op struct {
	Seq         int
	Kind        MoveKind
	Domain      int
	Core        int
	At          sim.Time
	Delivered   bool
	DeliveredAt sim.Time
	// Moved counts threads re-homed by a revoke's actuation.
	Moved int
}

// Client is the domain-side actuation surface for upcalls. CoreGranted
// binds an executor and brings the core online; CoreRevoked re-homes the
// core's work and takes it offline, reporting how many threads moved.
type Client interface {
	CoreGranted(core int, at sim.Time) error
	CoreRevoked(core int, at sim.Time) (moved int, err error)
}

// PolicySwap records one policy change — a hot swap or a failsafe
// takeover.
type PolicySwap struct {
	At     sim.Time
	From   string
	To     string
	Reason string
}

// Config sizes a Sched.
type Config struct {
	Topo    Topology
	Domains int
	// MinPerDomain is the floor below which a revoke is refused (default
	// 1): every domain keeps at least one core, so its runqueue can never
	// strand with nowhere to re-home.
	MinPerDomain int
	// MaxPerDomain, when positive, caps any one domain's granted cores.
	MaxPerDomain int
	// Events, when non-nil, receives the grant/revoke/swap event stream.
	Events *trace.EventLog
}

// Sched is the cluster-level core scheduler: the authoritative core
// ledger, per-domain request ("want") bookkeeping, per-domain upcall
// queues, and the active policy. It is the mechanism; policies only
// propose.
type Sched struct {
	cfg    Config
	owner  []int // per core: owning domain, or -1
	fenced []bool
	// want is each domain's outstanding RequestCores balance.
	want  []int
	share []float64
	// queueLen / violFrac are the upper layer's per-domain load signals,
	// refreshed by the driver before each Schedule.
	queueLen []int
	violFrac []float64
	// queues holds, per domain, the seqs of committed ops whose upcalls
	// have not yet been delivered (FIFO).
	queues [][]int
	// pendingRevoke[core] is the seq of a committed-but-unactuated revoke
	// (-1 when none): a later grant of the same core is held back behind
	// it so the core is never online in two domains at once.
	pendingRevoke []int
	ops           []Op
	txns          []TxnResult
	swaps         []PolicySwap
	policy        Policy
	swapLogged    bool
	// Counters tallies scheduler actions in deterministic order.
	Counters *stats.Counters
}

// New builds an empty ledger: every core free, no policy decisions yet.
func New(cfg Config, policy Policy) (*Sched, error) {
	if cfg.Topo.Cores <= 0 {
		return nil, fmt.Errorf("clustersched: need at least one core")
	}
	if cfg.Domains <= 0 {
		return nil, fmt.Errorf("clustersched: need at least one domain")
	}
	if cfg.MinPerDomain <= 0 {
		cfg.MinPerDomain = 1
	}
	if policy == nil {
		policy = Static{}
	}
	s := &Sched{
		cfg:           cfg,
		owner:         make([]int, cfg.Topo.Cores),
		fenced:        make([]bool, cfg.Topo.Cores),
		want:          make([]int, cfg.Domains),
		share:         make([]float64, cfg.Domains),
		queueLen:      make([]int, cfg.Domains),
		violFrac:      make([]float64, cfg.Domains),
		queues:        make([][]int, cfg.Domains),
		pendingRevoke: make([]int, cfg.Topo.Cores),
		policy:        policy,
		Counters:      stats.NewCounters(),
	}
	for i := range s.owner {
		s.owner[i] = -1
		s.pendingRevoke[i] = -1
	}
	for i := range s.share {
		s.share[i] = 1
	}
	return s, nil
}

func (s *Sched) event(at sim.Time, name, detail string) {
	if s.cfg.Events != nil {
		s.cfg.Events.Record(at, name, detail)
	}
}

// Owner returns the domain owning a core, or -1.
func (s *Sched) Owner(core int) int { return s.owner[core] }

// Granted returns the cores a domain owns, ascending.
func (s *Sched) Granted(domain int) []int {
	var out []int
	for c, d := range s.owner {
		if d == domain {
			out = append(out, c)
		}
	}
	return out
}

// GrantedCount returns how many cores a domain owns.
func (s *Sched) GrantedCount(domain int) int {
	n := 0
	for _, d := range s.owner {
		if d == domain {
			n++
		}
	}
	return n
}

// FreeCores returns the unowned, unfenced cores, ascending.
func (s *Sched) FreeCores() []int {
	var out []int
	for c, d := range s.owner {
		if d == -1 && !s.fenced[c] {
			out = append(out, c)
		}
	}
	return out
}

// RequestCores is the domain syscall surface: domain asks for n more
// cores. The request only adjusts the want balance; the policy decides
// whether (and which cores) to grant at the next Schedule.
func (s *Sched) RequestCores(domain, n int, at sim.Time) error {
	if domain < 0 || domain >= s.cfg.Domains {
		return fmt.Errorf("clustersched: domain %d out of range", domain)
	}
	if n <= 0 {
		return fmt.Errorf("clustersched: request of %d cores", n)
	}
	s.want[domain] += n
	s.Counters.Add("clustersched.request", uint64(n))
	s.event(at, "csched.request", fmt.Sprintf("domain=%d n=%d want=%d", domain, n, s.want[domain]))
	return nil
}

// Want returns a domain's outstanding request balance.
func (s *Sched) Want(domain int) int { return s.want[domain] }

// YieldCore is the domain syscall surface for giving a core back. The
// yield commits immediately as a single-move transaction (policy
// "yield"); the revoke upcall still flows through the domain's queue so
// actuation happens at the next step boundary like any other revoke.
func (s *Sched) YieldCore(domain, core int, at sim.Time) error {
	if domain < 0 || domain >= s.cfg.Domains {
		return fmt.Errorf("clustersched: domain %d out of range", domain)
	}
	res := s.commit(Txn{Moves: []Move{{Kind: Revoke, Domain: domain, Core: core}}}, at, "yield")
	if res.Committed != 1 {
		return fmt.Errorf("clustersched: yield of core %d by domain %d refused: %s", core, domain, res.Moves[0].Reason)
	}
	s.Counters.Inc("clustersched.yield")
	return nil
}

// SetSignals refreshes a domain's load signals (runqueue backlog and the
// journey layer's SLO violation fraction) for the next policy decision.
func (s *Sched) SetSignals(domain, queueLen int, violFrac float64) {
	s.queueLen[domain] = queueLen
	s.violFrac[domain] = violFrac
}

// SetShare sets a domain's fair-share weight (default 1).
func (s *Sched) SetShare(domain int, w float64) {
	if w > 0 {
		s.share[domain] = w
	}
}

// FenceCore withdraws a core from future grants (the self-healing layer
// calls this when a core is declared dead). An owned core stays on the
// ledger — the owning domain's own fencing machinery handles the
// domain-side — but it will never be granted again.
func (s *Sched) FenceCore(core int, at sim.Time) {
	if core < 0 || core >= len(s.fenced) || s.fenced[core] {
		return
	}
	s.fenced[core] = true
	s.Counters.Inc("clustersched.fence")
	s.event(at, "csched.fence", fmt.Sprintf("core=%d owner=%d", core, s.owner[core]))
}

// Fenced reports whether a core is withdrawn from grants.
func (s *Sched) Fenced(core int) bool { return s.fenced[core] }

// SetPolicy hot-swaps the active policy mid-run. The swap is recorded
// and visible in the report.
func (s *Sched) SetPolicy(p Policy, at sim.Time, reason string) {
	if p == nil {
		return
	}
	from := s.policy.Name()
	s.policy = p
	s.swapLogged = false
	s.swaps = append(s.swaps, PolicySwap{At: at, From: from, To: p.Name(), Reason: reason})
	s.Counters.Inc("clustersched.policy.swap")
	s.event(at, "csched.swap", fmt.Sprintf("from=%s to=%s reason=%s", from, p.Name(), reason))
}

// Policy returns the active policy.
func (s *Sched) ActivePolicy() Policy { return s.policy }

// PolicyName returns the active policy's name.
func (s *Sched) PolicyName() string { return s.policy.Name() }

// view snapshots the ledger for a policy decision.
func (s *Sched) view(at sim.Time) View {
	v := View{
		Now:          at,
		Cores:        s.cfg.Topo.Cores,
		MinPerDomain: s.cfg.MinPerDomain,
		MaxPerDomain: s.cfg.MaxPerDomain,
		FreeCores:    s.FreeCores(),
		Owned:        make([][]int, s.cfg.Domains),
		Domains:      make([]DomainView, s.cfg.Domains),
	}
	for c := range s.fenced {
		if s.fenced[c] {
			v.Fenced++
		}
	}
	for d := 0; d < s.cfg.Domains; d++ {
		v.Owned[d] = s.Granted(d)
		v.Domains[d] = DomainView{
			ID:            d,
			Granted:       len(v.Owned[d]),
			Want:          s.want[d],
			QueueLen:      s.queueLen[d],
			ViolationFrac: s.violFrac[d],
			Share:         s.share[d],
		}
	}
	return v
}

// Schedule runs the active policy against the current ledger view and
// commits the resulting transaction. A swap performed inside the
// decision (the failsafe taking over) is recorded once.
func (s *Sched) Schedule(at sim.Time) TxnResult {
	before := s.policy.Name()
	txn := s.policy.Decide(s.view(at))
	res := s.commit(txn, at, s.policy.Name())
	if fw, ok := s.policy.(interface{ Swapped() (bool, string) }); ok && !s.swapLogged {
		if sw, reason := fw.Swapped(); sw {
			s.swapLogged = true
			s.swaps = append(s.swaps, PolicySwap{At: at, From: before, To: s.policy.Name(), Reason: "failsafe: " + reason})
			s.Counters.Inc("clustersched.failsafe.swap")
			s.event(at, "csched.failsafe", fmt.Sprintf("policy=%s reason=%s", s.policy.Name(), reason))
		}
	}
	return res
}

// Bootstrap grants every domain its first min cores (lowest free cores,
// domain order) through the normal commit path, so the initial
// allocation is on the ledger and in the oracle's replay like any other
// transaction.
func (s *Sched) Bootstrap(min int, at sim.Time) (TxnResult, error) {
	if min < s.cfg.MinPerDomain {
		min = s.cfg.MinPerDomain
	}
	var txn Txn
	free := s.FreeCores()
	next := 0
	for d := 0; d < s.cfg.Domains; d++ {
		for i := 0; i < min; i++ {
			if next >= len(free) {
				return TxnResult{}, fmt.Errorf("clustersched: bootstrap needs %d cores, only %d free", s.cfg.Domains*min, len(free))
			}
			txn.Moves = append(txn.Moves, Move{Kind: Grant, Domain: d, Core: free[next]})
			next++
		}
	}
	res := s.commit(txn, at, "bootstrap")
	if res.Failed > 0 {
		return res, fmt.Errorf("clustersched: bootstrap had %d refused moves", res.Failed)
	}
	return res, nil
}

// commit validates the transaction's moves in order against the live
// ledger and applies the valid ones: the ledger updates move by move, so
// a revoke earlier in the transaction frees its core for a later grant.
// Every committed move enqueues its upcall on the affected domain's
// queue; actuation happens at that domain's next Deliver.
func (s *Sched) commit(txn Txn, at sim.Time, policy string) TxnResult {
	res := TxnResult{Seq: len(s.txns), At: at, Policy: policy}
	for _, m := range txn.Moves {
		st := MoveStatus{Move: m}
		switch {
		case m.Core < 0 || m.Core >= len(s.owner):
			st.Reason = "core-range"
		case m.Domain < 0 || m.Domain >= s.cfg.Domains:
			st.Reason = "domain-range"
		case m.Kind == Grant && s.fenced[m.Core]:
			st.Reason = "fenced"
		case m.Kind == Grant && s.owner[m.Core] != -1:
			st.Reason = "owned"
		case m.Kind == Grant && s.cfg.MaxPerDomain > 0 && s.GrantedCount(m.Domain) >= s.cfg.MaxPerDomain:
			st.Reason = "max-per-domain"
		case m.Kind == Revoke && s.owner[m.Core] != m.Domain:
			st.Reason = "not-owner"
		case m.Kind == Revoke && s.GrantedCount(m.Domain) <= s.cfg.MinPerDomain:
			st.Reason = "last-core"
		default:
			st.OK = true
		}
		if !st.OK {
			res.Failed++
			res.Moves = append(res.Moves, st)
			s.Counters.Inc("clustersched.move.fail")
			continue
		}
		seq := len(s.ops)
		op := Op{Seq: seq, Kind: m.Kind, Domain: m.Domain, Core: m.Core, At: at}
		switch m.Kind {
		case Grant:
			s.owner[m.Core] = m.Domain
			if s.want[m.Domain] > 0 {
				s.want[m.Domain]--
			}
			s.Counters.Inc("clustersched.grant")
		case Revoke:
			s.owner[m.Core] = -1
			s.pendingRevoke[m.Core] = seq
			s.Counters.Inc("clustersched.revoke")
		}
		s.ops = append(s.ops, op)
		s.queues[m.Domain] = append(s.queues[m.Domain], seq)
		res.Committed++
		res.Moves = append(res.Moves, st)
		s.event(at, "csched."+m.Kind.String(), fmt.Sprintf("domain=%d core=%d seq=%d policy=%s", m.Domain, m.Core, seq, policy))
	}
	s.txns = append(s.txns, res)
	return res
}

// Deliver drains a domain's pending upcalls through the client — the
// step-boundary actuation point. Delivery is FIFO; a Grant whose core
// still has an unactuated Revoke (the previous owner has not drained it
// yet) blocks the queue head until the revoke is delivered, preventing
// the core from ever being online in two domains at once. Returns how
// many upcalls were delivered.
func (s *Sched) Deliver(domain int, at sim.Time, cl Client) (int, error) {
	q := s.queues[domain]
	delivered := 0
	for len(q) > 0 {
		seq := q[0]
		op := &s.ops[seq]
		if op.Kind == Grant && s.pendingRevoke[op.Core] >= 0 && s.pendingRevoke[op.Core] < seq {
			break // held back behind the previous owner's revoke actuation
		}
		var err error
		switch op.Kind {
		case Grant:
			err = cl.CoreGranted(op.Core, at)
		case Revoke:
			op.Moved, err = cl.CoreRevoked(op.Core, at)
		}
		if err != nil {
			s.queues[domain] = q
			return delivered, fmt.Errorf("clustersched: actuating %s core=%d domain=%d: %w", op.Kind, op.Core, domain, err)
		}
		op.Delivered = true
		op.DeliveredAt = at
		if op.Kind == Revoke && s.pendingRevoke[op.Core] == seq {
			s.pendingRevoke[op.Core] = -1
		}
		q = q[1:]
		delivered++
		s.Counters.Inc("clustersched.upcall")
	}
	s.queues[domain] = q
	return delivered, nil
}

// PendingUpcalls returns how many upcalls a domain has queued.
func (s *Sched) PendingUpcalls(domain int) int { return len(s.queues[domain]) }

// Ops returns the committed ledger operations in commit order.
func (s *Sched) Ops() []Op { return s.ops }

// Swaps returns the recorded policy swaps.
func (s *Sched) Swaps() []PolicySwap { return s.swaps }
