package clustersched

import (
	"bytes"
	"fmt"
	"testing"

	"vessel/internal/sim"
)

// fakeClient records upcall actuations in order.
type fakeClient struct {
	log    []string
	online map[int]bool
	// failNext makes the next actuation fail.
	failNext bool
}

func newFakeClient() *fakeClient { return &fakeClient{online: make(map[int]bool)} }

func (f *fakeClient) CoreGranted(core int, at sim.Time) error {
	if f.failNext {
		f.failNext = false
		return fmt.Errorf("injected actuation failure")
	}
	f.online[core] = true
	f.log = append(f.log, fmt.Sprintf("grant:%d", core))
	return nil
}

func (f *fakeClient) CoreRevoked(core int, at sim.Time) (int, error) {
	if f.failNext {
		f.failNext = false
		return 0, fmt.Errorf("injected actuation failure")
	}
	delete(f.online, core)
	f.log = append(f.log, fmt.Sprintf("revoke:%d", core))
	return 1, nil
}

func newSched(t *testing.T, cores, domains int, p Policy) *Sched {
	t.Helper()
	s, err := New(Config{Topo: Topology{Cores: cores, CoresPerNode: 4}, Domains: domains}, p)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestTopologyNodeMap(t *testing.T) {
	topo := Topology{Cores: 10, CoresPerNode: 4}
	if topo.Nodes() != 3 {
		t.Fatalf("nodes = %d, want 3", topo.Nodes())
	}
	for core, want := range map[int]int{0: 0, 3: 0, 4: 1, 9: 2} {
		if got := topo.Node(core); got != want {
			t.Errorf("Node(%d) = %d, want %d", core, got, want)
		}
	}
}

func TestCommitRefusesDoubleGrant(t *testing.T) {
	s := newSched(t, 4, 2, nil)
	res := s.commit(Txn{Moves: []Move{
		{Kind: Grant, Domain: 0, Core: 0},
		{Kind: Grant, Domain: 1, Core: 0}, // same core again
	}}, 0, "test")
	if res.Committed != 1 || res.Failed != 1 {
		t.Fatalf("committed=%d failed=%d, want 1/1", res.Committed, res.Failed)
	}
	if res.Moves[1].Reason != "owned" {
		t.Fatalf("second move reason %q, want owned", res.Moves[1].Reason)
	}
	if s.Owner(0) != 0 {
		t.Fatalf("core 0 owner = %d, want 0", s.Owner(0))
	}
}

func TestCommitValidatesInOrder(t *testing.T) {
	s := newSched(t, 2, 2, nil)
	// Domain 0 owns both cores.
	if res := s.commit(Txn{Moves: []Move{
		{Kind: Grant, Domain: 0, Core: 0},
		{Kind: Grant, Domain: 0, Core: 1},
	}}, 0, "test"); res.Failed != 0 {
		t.Fatal("setup grants refused")
	}
	// Revoke frees core 1 for the grant later in the same transaction.
	res := s.commit(Txn{Moves: []Move{
		{Kind: Revoke, Domain: 0, Core: 1},
		{Kind: Grant, Domain: 1, Core: 1},
	}}, 10, "test")
	if res.Committed != 2 {
		t.Fatalf("committed=%d, want 2: %+v", res.Committed, res.Moves)
	}
	if s.Owner(1) != 1 {
		t.Fatalf("core 1 owner = %d, want 1", s.Owner(1))
	}
}

func TestCommitGuards(t *testing.T) {
	s := newSched(t, 4, 2, nil)
	s.FenceCore(3, 0)
	res := s.commit(Txn{Moves: []Move{
		{Kind: Grant, Domain: 0, Core: 3},  // fenced
		{Kind: Grant, Domain: 0, Core: 9},  // out of range
		{Kind: Revoke, Domain: 0, Core: 0}, // not owner
		{Kind: Grant, Domain: 5, Core: 0},  // bad domain
		{Kind: Grant, Domain: 0, Core: 0},  // ok
		{Kind: Revoke, Domain: 0, Core: 0}, // last-core guard
	}}, 0, "test")
	wantReasons := []string{"fenced", "core-range", "not-owner", "domain-range", "", "last-core"}
	for i, want := range wantReasons {
		if got := res.Moves[i].Reason; got != want {
			t.Errorf("move %d reason %q, want %q", i, got, want)
		}
	}
	if res.Committed != 1 || res.Failed != 5 {
		t.Fatalf("committed=%d failed=%d, want 1/5", res.Committed, res.Failed)
	}
}

func TestMaxPerDomainCap(t *testing.T) {
	s, err := New(Config{Topo: Topology{Cores: 4}, Domains: 1, MaxPerDomain: 2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	res := s.commit(Txn{Moves: []Move{
		{Kind: Grant, Domain: 0, Core: 0},
		{Kind: Grant, Domain: 0, Core: 1},
		{Kind: Grant, Domain: 0, Core: 2},
	}}, 0, "test")
	if res.Committed != 2 || res.Moves[2].Reason != "max-per-domain" {
		t.Fatalf("cap not enforced: %+v", res.Moves)
	}
}

func TestDeliverFIFOAndHoldback(t *testing.T) {
	s := newSched(t, 4, 2, nil)
	now := sim.Time(0)
	if _, err := s.Bootstrap(1, now); err != nil {
		t.Fatal(err)
	}
	// d0 owns c0, d1 owns c1. Move c0 from d0 to d1 in one transaction.
	res := s.commit(Txn{Moves: []Move{
		{Kind: Revoke, Domain: 0, Core: 0},
		{Kind: Grant, Domain: 0, Core: 2}, // keep d0 above the floor... (already has min? revoke dropped to 0)
	}}, 5, "test")
	_ = res
	// d0's revoke of its only core is refused by the last-core guard;
	// grant it a second core first, then move c0.
	cl0, cl1 := newFakeClient(), newFakeClient()
	if _, err := s.Deliver(0, 6, cl0); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Deliver(1, 6, cl1); err != nil {
		t.Fatal(err)
	}
	res = s.commit(Txn{Moves: []Move{
		{Kind: Revoke, Domain: 0, Core: 0},
		{Kind: Grant, Domain: 1, Core: 0},
	}}, 10, "test")
	if res.Committed != 2 {
		t.Fatalf("move txn committed=%d: %+v", res.Committed, res.Moves)
	}
	// Deliver to the grantee FIRST: the grant must be held back because
	// d0 has not actuated the revoke yet.
	n, err := s.Deliver(1, 11, cl1)
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("grant delivered before revoke actuated: %d upcalls, log=%v", n, cl1.log)
	}
	// Now the previous owner drains its revoke...
	if _, err := s.Deliver(0, 12, cl0); err != nil {
		t.Fatal(err)
	}
	// ...and the grant unblocks.
	n, err = s.Deliver(1, 13, cl1)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 || !cl1.online[0] {
		t.Fatalf("grant still blocked after revoke actuation: n=%d online=%v", n, cl1.online)
	}
	if s.PendingUpcalls(0)+s.PendingUpcalls(1) != 0 {
		t.Fatalf("upcalls left pending")
	}
}

func TestYieldFlowsThroughUpcallQueue(t *testing.T) {
	s := newSched(t, 4, 1, nil)
	s.commit(Txn{Moves: []Move{
		{Kind: Grant, Domain: 0, Core: 0},
		{Kind: Grant, Domain: 0, Core: 1},
	}}, 0, "test")
	cl := newFakeClient()
	if _, err := s.Deliver(0, 1, cl); err != nil {
		t.Fatal(err)
	}
	if err := s.YieldCore(0, 1, 2); err != nil {
		t.Fatal(err)
	}
	if s.Owner(1) != -1 {
		t.Fatal("yield did not free the core on the ledger")
	}
	if s.PendingUpcalls(0) != 1 {
		t.Fatal("yield did not enqueue a revoke upcall")
	}
	if _, err := s.Deliver(0, 3, cl); err != nil {
		t.Fatal(err)
	}
	if cl.log[len(cl.log)-1] != "revoke:1" {
		t.Fatalf("log = %v, want trailing revoke:1", cl.log)
	}
	// Yielding the last core is refused.
	if err := s.YieldCore(0, 0, 4); err == nil {
		t.Fatal("yield of last core accepted")
	}
}

func TestRequestFeedsStaticGrants(t *testing.T) {
	s := newSched(t, 8, 2, Static{})
	if _, err := s.Bootstrap(1, 0); err != nil {
		t.Fatal(err)
	}
	if err := s.RequestCores(1, 3, 1); err != nil {
		t.Fatal(err)
	}
	res := s.Schedule(2)
	if res.Committed != 3 {
		t.Fatalf("static granted %d, want 3", res.Committed)
	}
	if got := s.GrantedCount(1); got != 4 {
		t.Fatalf("domain 1 has %d cores, want 4", got)
	}
	if s.Want(1) != 0 {
		t.Fatalf("want balance %d not drained", s.Want(1))
	}
}

func TestFairShareConvergesOnDemand(t *testing.T) {
	s := newSched(t, 12, 3, FairShare{})
	if _, err := s.Bootstrap(1, 0); err != nil {
		t.Fatal(err)
	}
	// Domain 0 wants everything; domain 1 a little; domain 2 idle.
	s.RequestCores(0, 20, 1)
	s.RequestCores(1, 3, 1)
	for i := 0; i < 4; i++ {
		s.Schedule(sim.Time(10 + i))
	}
	g0, g1, g2 := s.GrantedCount(0), s.GrantedCount(1), s.GrantedCount(2)
	if g2 != 1 {
		t.Fatalf("idle domain hoards %d cores, want 1", g2)
	}
	if g1 != 4 {
		t.Fatalf("domain 1 has %d cores, want 4 (demand-bounded)", g1)
	}
	if g0 != 7 {
		t.Fatalf("domain 0 has %d cores, want 7 (rest of the machine)", g0)
	}
	if g0+g1+g2 != 12 {
		t.Fatalf("cores leaked: %d+%d+%d != 12", g0, g1, g2)
	}
}

func TestMicroLatencyStealsForQueueBuildup(t *testing.T) {
	s := newSched(t, 8, 2, MicroLatency{})
	// Domain 0: 6 cores, idle. Domain 1: 2 cores, huge backlog.
	s.commit(Txn{Moves: []Move{
		{Kind: Grant, Domain: 0, Core: 0}, {Kind: Grant, Domain: 0, Core: 1},
		{Kind: Grant, Domain: 0, Core: 2}, {Kind: Grant, Domain: 0, Core: 3},
		{Kind: Grant, Domain: 0, Core: 4}, {Kind: Grant, Domain: 0, Core: 5},
		{Kind: Grant, Domain: 1, Core: 6}, {Kind: Grant, Domain: 1, Core: 7},
	}}, 0, "test")
	s.SetSignals(0, 0, 0)
	s.SetSignals(1, 40, 0)
	res := s.Schedule(10)
	if res.Committed == 0 {
		t.Fatalf("no steal for hot domain: %+v", res)
	}
	if got := s.GrantedCount(1); got <= 2 {
		t.Fatalf("hot domain still has %d cores", got)
	}
	steals := 0
	for _, m := range res.Moves {
		if m.OK && m.Kind == Revoke && m.Domain == 0 {
			steals++
		}
	}
	if steals == 0 {
		t.Fatal("expected revokes against the cold domain")
	}
}

func TestMicroLatencySLOSignal(t *testing.T) {
	s := newSched(t, 4, 2, MicroLatency{})
	s.commit(Txn{Moves: []Move{
		{Kind: Grant, Domain: 0, Core: 0}, {Kind: Grant, Domain: 0, Core: 1},
		{Kind: Grant, Domain: 0, Core: 2}, {Kind: Grant, Domain: 1, Core: 3},
	}}, 0, "test")
	// Low backlog but SLO violations: still hot.
	s.SetSignals(1, 2, 0.5)
	res := s.Schedule(5)
	granted := 0
	for _, m := range res.Moves {
		if m.OK && m.Kind == Grant && m.Domain == 1 {
			granted++
		}
	}
	if granted == 0 {
		t.Fatalf("SLO-violating domain got nothing: %+v", res.Moves)
	}
}

func TestHotSwapRecorded(t *testing.T) {
	s := newSched(t, 4, 2, FairShare{})
	s.SetPolicy(MicroLatency{}, 100, "operator")
	if got := s.PolicyName(); got != "uslatency" {
		t.Fatalf("policy = %s", got)
	}
	sw := s.Swaps()
	if len(sw) != 1 || sw[0].From != "fairshare" || sw[0].To != "uslatency" {
		t.Fatalf("swap record %+v", sw)
	}
}

func TestFailsafePanicSwap(t *testing.T) {
	fs := NewFailsafe(panicPolicy{}, 0)
	swapped := ""
	fs.OnSwap = func(r string) { swapped = r }
	txn := fs.Decide(View{Domains: []DomainView{{ID: 0}}})
	if txn.Moves != nil {
		t.Fatal("fallback should decide nothing with no demand")
	}
	if ok, reason := fs.Swapped(); !ok || reason != "panic" {
		t.Fatalf("swapped=%v reason=%q", ok, reason)
	}
	if swapped != "panic" || fs.Panics != 1 {
		t.Fatalf("OnSwap=%q panics=%d", swapped, fs.Panics)
	}
}

func TestFailsafeBudgetSwap(t *testing.T) {
	fs := NewFailsafe(FairShare{}, 1000)
	fs.InjectBurn(10_000)
	v := View{Cores: 2, MinPerDomain: 1, FreeCores: []int{0, 1},
		Owned: [][]int{nil}, Domains: []DomainView{{ID: 0, Share: 1, Want: 1}}}
	txn := fs.Decide(v)
	if ok, _ := fs.Swapped(); !ok || fs.Overruns != 1 {
		t.Fatalf("budget overrun not swapped: overruns=%d", fs.Overruns)
	}
	if txn.CostCycles < 10_000 {
		t.Fatalf("burned cycles not charged: %d", txn.CostCycles)
	}
}

func TestFailsafeInjectPanicViaSchedule(t *testing.T) {
	fs := NewFailsafe(FairShare{}, 0)
	s := newSched(t, 4, 2, fs)
	if _, err := s.Bootstrap(1, 0); err != nil {
		t.Fatal(err)
	}
	fs.InjectPanic()
	s.Schedule(10)
	if ok, _ := fs.Swapped(); !ok {
		t.Fatal("injected panic did not swap")
	}
	// The swap is recorded exactly once in the scheduler history.
	found := 0
	for _, sw := range s.Swaps() {
		if sw.Reason == "failsafe: panic" {
			found++
		}
	}
	if found != 1 {
		t.Fatalf("failsafe swap recorded %d times", found)
	}
	s.Schedule(11)
	if got := len(s.Swaps()); got != 1 {
		t.Fatalf("swap re-recorded: %d entries", got)
	}
}

type panicPolicy struct{}

func (panicPolicy) Name() string    { return "panic" }
func (panicPolicy) Decide(View) Txn { panic("boom") }

func TestPolicyRegistry(t *testing.T) {
	for _, name := range Names() {
		p, err := NewNamed(name)
		if err != nil {
			t.Fatal(err)
		}
		if p.Name() != name {
			t.Fatalf("policy %q reports name %q", name, p.Name())
		}
	}
	if _, err := NewNamed("nope"); err == nil {
		t.Fatal("unknown policy accepted")
	}
}

// runScenario drives a deterministic request/yield/steal scenario and
// returns the canonical report bytes.
func runScenario(t *testing.T) []byte {
	t.Helper()
	fs := NewFailsafe(FairShare{}, 100_000)
	s, err := New(Config{Topo: Topology{Cores: 16, CoresPerNode: 4}, Domains: 4}, fs)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Bootstrap(1, 0); err != nil {
		t.Fatal(err)
	}
	clients := make([]*fakeClient, 4)
	for i := range clients {
		clients[i] = newFakeClient()
	}
	deliverAll := func(at sim.Time) {
		for d := 0; d < 4; d++ {
			if _, err := s.Deliver(d, at, clients[d]); err != nil {
				t.Fatal(err)
			}
		}
	}
	deliverAll(1)
	s.RequestCores(0, 6, 2)
	s.RequestCores(2, 2, 2)
	for i := 0; i < 6; i++ {
		now := sim.Time(10 + 10*i)
		s.SetSignals(0, 12, 0)
		s.SetSignals(2, 4, 0.2)
		s.Schedule(now)
		deliverAll(now + 5)
		if i == 2 {
			s.SetPolicy(MicroLatency{}, now+6, "midrun")
		}
		if i == 4 {
			s.YieldCore(0, s.Granted(0)[len(s.Granted(0))-1], now+7)
			deliverAll(now + 8)
		}
	}
	return s.Report().Canonical()
}

func TestReportCanonicalDeterministic(t *testing.T) {
	a := runScenario(t)
	b := runScenario(t)
	if !bytes.Equal(a, b) {
		t.Fatalf("canonical bytes differ between identical runs:\n--- a ---\n%s\n--- b ---\n%s", a, b)
	}
	if len(a) == 0 {
		t.Fatal("empty canonical report")
	}
}

func TestDeliverErrorPropagates(t *testing.T) {
	s := newSched(t, 4, 1, nil)
	s.commit(Txn{Moves: []Move{{Kind: Grant, Domain: 0, Core: 0}}}, 0, "test")
	cl := newFakeClient()
	cl.failNext = true
	if _, err := s.Deliver(0, 1, cl); err == nil {
		t.Fatal("actuation failure swallowed")
	}
	// The failed upcall stays queued for a retry.
	if s.PendingUpcalls(0) != 1 {
		t.Fatal("failed upcall dropped from the queue")
	}
	if n, err := s.Deliver(0, 2, cl); err != nil || n != 1 {
		t.Fatalf("retry failed: n=%d err=%v", n, err)
	}
}
