package clustersched

// The policy layer: ghOSt-style pluggable cluster policies. A policy
// sees a read-only ledger view and proposes a transaction; it never
// touches the ledger itself, so a buggy policy can at worst propose
// invalid moves (refused per-move at commit) or crash (recovered by the
// Failsafe wrapper). Policies are a few hundred lines by design and
// hot-swappable mid-run via Sched.SetPolicy.

import (
	"fmt"
	"sort"

	"vessel/internal/sim"
)

// DomainView is one domain's slice of the ledger view.
type DomainView struct {
	ID int
	// Granted is the domain's current core count; Want its outstanding
	// RequestCores balance.
	Granted int
	Want    int
	// QueueLen is the domain's total runqueue backlog (threads waiting
	// for a core) as of the last signal refresh.
	QueueLen int
	// ViolationFrac is the domain's journey-layer SLO violation fraction
	// (0 when no tracer feeds it).
	ViolationFrac float64
	// Share is the domain's fair-share weight.
	Share float64
}

// View is the read-only snapshot a policy decides against.
type View struct {
	Now          sim.Time
	Cores        int
	Fenced       int
	MinPerDomain int
	MaxPerDomain int
	// FreeCores lists unowned, unfenced cores ascending; Owned lists each
	// domain's cores ascending.
	FreeCores []int
	Owned     [][]int
	Domains   []DomainView
}

// Policy is the pluggable cluster-scheduling interface: one decision in,
// one transaction out.
type Policy interface {
	Name() string
	Decide(View) Txn
}

// decisionCost models what a decision costs the control plane: a fixed
// base plus a per-move charge, measured against the failsafe budget.
func decisionCost(moves int) int64 { return 2_000 + 500*int64(moves) }

// Static is the failsafe fallback: the minimal obviously-correct policy.
// It grants free cores round-robin to domains with outstanding requests,
// in domain order, and never revokes — yields are the only way cores
// come back. No state, no arithmetic that can divide by zero, nothing to
// go wrong.
type Static struct{}

// Name implements Policy.
func (Static) Name() string { return "static" }

// Decide implements Policy.
func (Static) Decide(v View) Txn {
	var txn Txn
	want := make([]int, len(v.Domains))
	for i, d := range v.Domains {
		want[i] = d.Want
	}
	next := 0
	for _, core := range v.FreeCores {
		granted := false
		for off := 0; off < len(want); off++ {
			d := (next + off) % len(want)
			if want[d] > 0 {
				txn.Moves = append(txn.Moves, Move{Kind: Grant, Domain: d, Core: core})
				want[d]--
				next = d + 1
				granted = true
				break
			}
		}
		if !granted {
			break // nobody wants more cores
		}
	}
	txn.CostCycles = decisionCost(len(txn.Moves))
	return txn
}

// FairShare drives every domain toward its weighted fair share of the
// usable cores, bounded by demand: a domain's target is
// min(demand, weighted share), where demand = granted + want, so an idle
// domain never hoards cores it has no use for. Over-target domains are
// revoked down (highest cores first), under-target domains granted up
// (lowest free cores first) — revokes precede grants in the transaction
// so freed cores are grantable in the same decision.
type FairShare struct{}

// Name implements Policy.
func (FairShare) Name() string { return "fairshare" }

// Decide implements Policy.
func (FairShare) Decide(v View) Txn {
	n := len(v.Domains)
	usable := len(v.FreeCores)
	demand := make([]int, n)
	var totalShare float64
	for i, d := range v.Domains {
		usable += d.Granted
		demand[i] = d.Granted + d.Want
		if demand[i] < v.MinPerDomain {
			demand[i] = v.MinPerDomain
		}
		if v.MaxPerDomain > 0 && demand[i] > v.MaxPerDomain {
			demand[i] = v.MaxPerDomain
		}
		totalShare += d.Share
	}
	// Weighted, demand-bounded targets; leftovers go round-robin in
	// domain order to domains still under demand.
	target := make([]int, n)
	assigned := 0
	for i, d := range v.Domains {
		t := int(d.Share / totalShare * float64(usable))
		if t < v.MinPerDomain {
			t = v.MinPerDomain
		}
		if t > demand[i] {
			t = demand[i]
		}
		target[i] = t
		assigned += t
	}
	for assigned > usable {
		// Over-assignment (min floors exceeded capacity): trim the
		// largest targets first, never below the floor.
		trimmed := false
		for i := 0; i < n && assigned > usable; i++ {
			if target[i] > v.MinPerDomain {
				target[i]--
				assigned--
				trimmed = true
			}
		}
		if !trimmed {
			break
		}
	}
	for assigned < usable {
		grew := false
		for i := 0; i < n && assigned < usable; i++ {
			if target[i] < demand[i] {
				target[i]++
				assigned++
				grew = true
			}
		}
		if !grew {
			break // all demand satisfied
		}
	}

	var txn Txn
	// Revokes first: over-target domains give back their highest cores.
	for i, d := range v.Domains {
		for k := d.Granted; k > target[i]; k-- {
			txn.Moves = append(txn.Moves, Move{Kind: Revoke, Domain: i, Core: v.Owned[i][k-1]})
		}
	}
	// Grants: under-target domains take the lowest available cores —
	// free list first, then cores freed by the revokes above.
	avail := append([]int(nil), v.FreeCores...)
	for _, m := range txn.Moves {
		avail = append(avail, m.Core)
	}
	sort.Ints(avail)
	next := 0
	for i, d := range v.Domains {
		for k := d.Granted; k < target[i] && next < len(avail); k++ {
			txn.Moves = append(txn.Moves, Move{Kind: Grant, Domain: i, Core: avail[next]})
			next++
		}
	}
	txn.CostCycles = decisionCost(len(txn.Moves))
	return txn
}

// MicroLatency is the µs-latency policy: it watches per-domain queue
// buildup (backlog per granted core) and the journey layer's SLO
// violation fraction, and steals cores for hot domains from cold ones —
// the queue-pressure signal is the same one ghOSt's µs-scale policies
// react to. Free cores are granted first; only then does it revoke from
// the coldest domains, at most StealMax per decision so reallocation
// stays incremental.
type MicroLatency struct {
	// HotQueuePerCore marks a domain hot when its backlog per granted
	// core exceeds this (default 4).
	HotQueuePerCore float64
	// MaxViolationFrac marks a domain hot when its SLO violation
	// fraction exceeds this while any backlog exists (default 0.1).
	MaxViolationFrac float64
	// ColdQueuePerCore marks a domain cold (stealable) when its backlog
	// per granted core is below this and it has no outstanding want
	// (default 1).
	ColdQueuePerCore float64
	// TargetQueuePerCore sizes how many cores a hot domain needs
	// (default 2).
	TargetQueuePerCore float64
	// StealMax caps revokes per decision (default max(1, cores/16)).
	StealMax int
}

// Name implements Policy.
func (MicroLatency) Name() string { return "uslatency" }

func (p MicroLatency) withDefaults(cores int) MicroLatency {
	if p.HotQueuePerCore <= 0 {
		p.HotQueuePerCore = 4
	}
	if p.MaxViolationFrac <= 0 {
		p.MaxViolationFrac = 0.1
	}
	if p.ColdQueuePerCore <= 0 {
		p.ColdQueuePerCore = 1
	}
	if p.TargetQueuePerCore <= 0 {
		p.TargetQueuePerCore = 2
	}
	if p.StealMax <= 0 {
		p.StealMax = cores / 16
		if p.StealMax < 1 {
			p.StealMax = 1
		}
	}
	return p
}

// Decide implements Policy.
func (p MicroLatency) Decide(v View) Txn {
	p = p.withDefaults(v.Cores)
	type hotDomain struct {
		id       int
		pressure float64
		need     int
	}
	var hot []hotDomain
	var cold []hotDomain
	for i, d := range v.Domains {
		pressure := float64(d.QueueLen) / float64(max(1, d.Granted))
		isHot := pressure > p.HotQueuePerCore ||
			(d.ViolationFrac > p.MaxViolationFrac && d.QueueLen > 0)
		if isHot {
			need := int(float64(d.QueueLen)/p.TargetQueuePerCore) - d.Granted
			if need < 1 {
				need = 1
			}
			if v.MaxPerDomain > 0 && d.Granted+need > v.MaxPerDomain {
				need = v.MaxPerDomain - d.Granted
			}
			if need > 0 {
				hot = append(hot, hotDomain{id: i, pressure: pressure, need: need})
			}
			continue
		}
		if pressure < p.ColdQueuePerCore && d.Want == 0 && d.Granted > v.MinPerDomain {
			cold = append(cold, hotDomain{id: i, pressure: pressure})
		}
	}
	if len(hot) == 0 {
		// Nothing hot: behave like Static so plain requests still land.
		txn := Static{}.Decide(v)
		txn.CostCycles = decisionCost(len(txn.Moves))
		return txn
	}
	// Hottest first; coldest first. Ties break on domain ID, so the
	// order is a pure function of the view.
	sort.SliceStable(hot, func(a, b int) bool {
		if hot[a].pressure != hot[b].pressure {
			return hot[a].pressure > hot[b].pressure
		}
		return hot[a].id < hot[b].id
	})
	sort.SliceStable(cold, func(a, b int) bool {
		if cold[a].pressure != cold[b].pressure {
			return cold[a].pressure < cold[b].pressure
		}
		return cold[a].id < cold[b].id
	})

	var txn Txn
	avail := append([]int(nil), v.FreeCores...)
	// Steal from the coldest: one core per cold domain per pass (their
	// highest core), up to StealMax, only while hot need remains unmet.
	needTotal := 0
	for _, h := range hot {
		needTotal += h.need
	}
	spare := make([]int, len(cold))
	for i, c := range cold {
		spare[i] = v.Domains[c.id].Granted - v.MinPerDomain
	}
	stolen := 0
	taken := make([]int, len(cold))
	for stolen < p.StealMax && needTotal > len(avail) {
		progress := false
		for i, c := range cold {
			if stolen >= p.StealMax || needTotal <= len(avail) {
				break
			}
			if taken[i] >= spare[i] {
				continue
			}
			owned := v.Owned[c.id]
			core := owned[len(owned)-1-taken[i]]
			txn.Moves = append(txn.Moves, Move{Kind: Revoke, Domain: c.id, Core: core})
			avail = append(avail, core)
			taken[i]++
			stolen++
			progress = true
		}
		if !progress {
			break
		}
	}
	sort.Ints(avail)
	// Grant hottest-first, round-robin so one huge domain cannot starve
	// the rest of the hot set.
	next := 0
	for next < len(avail) {
		progress := false
		for i := range hot {
			if next >= len(avail) {
				break
			}
			if hot[i].need <= 0 {
				continue
			}
			txn.Moves = append(txn.Moves, Move{Kind: Grant, Domain: hot[i].id, Core: avail[next]})
			next++
			hot[i].need--
			progress = true
		}
		if !progress {
			break
		}
	}
	txn.CostCycles = decisionCost(len(txn.Moves))
	return txn
}

// Names lists the registered policy names, in registry order.
func Names() []string { return []string{"fairshare", "uslatency", "static"} }

// NewNamed builds a registered policy by name.
func NewNamed(name string) (Policy, error) {
	switch name {
	case "fairshare":
		return FairShare{}, nil
	case "uslatency":
		return MicroLatency{}, nil
	case "static":
		return Static{}, nil
	default:
		return nil, fmt.Errorf("clustersched: unknown policy %q (have %v)", name, Names())
	}
}
