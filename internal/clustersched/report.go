package clustersched

// Report is the scheduler's determinism witness: the full transaction
// and ledger-operation history with a canonical byte rendering.
// Identical runs produce byte-identical Canonical output at any test
// parallelism — the property the conformance sweep and clusterbench
// double-run gates hold.

import (
	"bytes"
	"fmt"

	"vessel/internal/sim"
	"vessel/internal/stats"
)

// Report is the outcome of a scheduling run.
type Report struct {
	Domains int
	Cores   int
	// Policy is the active policy's name at report time.
	Policy string
	Txns   []TxnResult
	Ops    []Op
	Swaps  []PolicySwap
	// Tallies, derived from the op history.
	Grants         int
	Revokes        int
	CommittedMoves int
	FailedMoves    int
	Delivered      int
	PendingUpcalls int
	// Actuation latency (virtual ns from commit to upcall delivery)
	// over all delivered ops.
	Actuation stats.Summary
	// FinalOwner is the ledger at report time: per core, the owning
	// domain or -1.
	FinalOwner []int
	Counters   *stats.Counters
}

// Report snapshots the scheduler's history.
func (s *Sched) Report() *Report {
	r := &Report{
		Domains:    s.cfg.Domains,
		Cores:      s.cfg.Topo.Cores,
		Policy:     s.policy.Name(),
		Txns:       append([]TxnResult(nil), s.txns...),
		Ops:        append([]Op(nil), s.ops...),
		Swaps:      append([]PolicySwap(nil), s.swaps...),
		FinalOwner: append([]int(nil), s.owner...),
		Counters:   s.Counters,
	}
	lat := stats.NewHistogram()
	for _, op := range r.Ops {
		switch op.Kind {
		case Grant:
			r.Grants++
		case Revoke:
			r.Revokes++
		}
		if op.Delivered {
			r.Delivered++
			lat.Record(int64(op.DeliveredAt.Sub(op.At)))
		}
	}
	for _, t := range r.Txns {
		r.CommittedMoves += t.Committed
		r.FailedMoves += t.Failed
	}
	for d := 0; d < s.cfg.Domains; d++ {
		r.PendingUpcalls += len(s.queues[d])
	}
	r.Actuation = lat.Summarize()
	return r
}

// Canonical renders the report deterministically; identical runs (and
// any -parallel width) produce byte-identical output.
func (r *Report) Canonical() []byte {
	var b bytes.Buffer
	fmt.Fprintf(&b, "clustersched: domains=%d cores=%d policy=%s\n", r.Domains, r.Cores, r.Policy)
	fmt.Fprintf(&b, "moves: grants=%d revokes=%d committed=%d failed=%d delivered=%d pending=%d\n",
		r.Grants, r.Revokes, r.CommittedMoves, r.FailedMoves, r.Delivered, r.PendingUpcalls)
	fmt.Fprintf(&b, "actuation: n=%d p50=%d p99=%d max=%d\n",
		r.Actuation.Count, r.Actuation.P50, r.Actuation.P99, r.Actuation.Max)
	for _, t := range r.Txns {
		fmt.Fprintf(&b, "txn %d at=%d policy=%s committed=%d failed=%d:", t.Seq, int64(t.At), t.Policy, t.Committed, t.Failed)
		for _, m := range t.Moves {
			if m.OK {
				fmt.Fprintf(&b, " %s(d%d,c%d)", m.Kind, m.Domain, m.Core)
			} else {
				fmt.Fprintf(&b, " !%s(d%d,c%d:%s)", m.Kind, m.Domain, m.Core, m.Reason)
			}
		}
		b.WriteByte('\n')
	}
	for _, op := range r.Ops {
		fmt.Fprintf(&b, "op %d %s d%d c%d at=%d delivered=%t", op.Seq, op.Kind, op.Domain, op.Core, int64(op.At), op.Delivered)
		if op.Delivered {
			fmt.Fprintf(&b, " dat=%d", int64(op.DeliveredAt))
		}
		if op.Kind == Revoke && op.Moved > 0 {
			fmt.Fprintf(&b, " moved=%d", op.Moved)
		}
		b.WriteByte('\n')
	}
	for _, sw := range r.Swaps {
		fmt.Fprintf(&b, "swap at=%d from=%s to=%s reason=%s\n", int64(sw.At), sw.From, sw.To, sw.Reason)
	}
	b.WriteString("owner:")
	for c, d := range r.FinalOwner {
		fmt.Fprintf(&b, " c%d=%d", c, d)
	}
	b.WriteByte('\n')
	b.WriteString(r.Counters.String())
	return b.Bytes()
}

// ActuationOK reports whether every delivered op actuated within the
// given virtual-time bound — the clusterbench latency gate.
func (r *Report) ActuationOK(bound sim.Duration) bool {
	return r.Actuation.Count == 0 || sim.Duration(r.Actuation.Max) <= bound
}
