package smas

import (
	"strings"
	"testing"

	"vessel/internal/cpu"
	"vessel/internal/mem"
	"vessel/internal/mpk"
)

func newSMAS(t *testing.T, cores int) *SMAS {
	t.Helper()
	m := cpu.NewMachine(cores, cpu.Default())
	s, err := New(m, cores)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewReservesFixedKeys(t *testing.T) {
	s := newSMAS(t, 4)
	if !s.Keys.InUse(RuntimeKey) || !s.Keys.InUse(PipeKey) {
		t.Fatal("fixed-role keys not reserved")
	}
	if s.Keys.Available() != MaxUProcs {
		t.Fatalf("available keys = %d, want %d", s.Keys.Available(), MaxUProcs)
	}
	if _, err := New(cpu.NewMachine(1, nil), 0); err == nil {
		t.Fatal("zero cores must fail")
	}
}

func TestThirteenUProcessLimit(t *testing.T) {
	s := newSMAS(t, 2)
	regions := make([]*Region, 0, MaxUProcs)
	for i := 0; i < MaxUProcs; i++ {
		r, err := s.AllocRegion(mem.PageSize)
		if err != nil {
			t.Fatalf("region %d: %v", i, err)
		}
		if r.Key == 0 || r.Key >= RuntimeKey {
			t.Fatalf("region %d got reserved key %d", i, r.Key)
		}
		regions = append(regions, r)
	}
	if _, err := s.AllocRegion(mem.PageSize); err == nil {
		t.Fatal("14th uProcess must be refused (13 max, §4.1)")
	}
	// Destroying one makes room again.
	if err := s.FreeRegion(regions[5]); err != nil {
		t.Fatal(err)
	}
	if _, err := s.AllocRegion(mem.PageSize); err != nil {
		t.Fatalf("after free: %v", err)
	}
}

func TestRegionIsolationByPKRU(t *testing.T) {
	s := newSMAS(t, 2)
	ra, err := s.AllocRegion(2 * mem.PageSize)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := s.AllocRegion(2 * mem.PageSize)
	if err != nil {
		t.Fatal(err)
	}
	pkruA := s.AppPKRU(ra.Key)
	// A can write its own region.
	if f := s.AS.Write(ra.Base, 8, 1, pkruA); f != nil {
		t.Fatalf("A writing own region: %v", f)
	}
	// A cannot touch B's region.
	if f := s.AS.Write(rb.Base, 8, 1, pkruA); f == nil {
		t.Fatal("A wrote B's region")
	}
	if _, f := s.AS.Read(rb.Base, 8, pkruA); f == nil {
		t.Fatal("A read B's region")
	}
	// A can read but not write the message pipe.
	if _, f := s.AS.Read(PipeBase, 8, pkruA); f != nil {
		t.Fatalf("A reading pipe: %v", f)
	}
	if f := s.AS.Write(PipeBase, 8, 1, pkruA); f == nil {
		t.Fatal("A wrote the pipe")
	}
	// A cannot touch the runtime region at all.
	if _, f := s.AS.Read(RuntimeBase, 8, pkruA); f == nil {
		t.Fatal("A read the runtime region")
	}
	// The runtime PKRU sees everything.
	rt := s.RuntimePKRU()
	for _, a := range []mem.Addr{ra.Base, rb.Base, PipeBase, RuntimeBase} {
		if _, f := s.AS.Read(a, 8, rt); f != nil {
			t.Fatalf("runtime read %#x: %v", uint64(a), f)
		}
	}
}

func TestTaskMapAccessors(t *testing.T) {
	s := newSMAS(t, 4)
	if err := s.SetTask(2, 0xbeef0, mpk.PKRU(0x1234), 77); err != nil {
		t.Fatal(err)
	}
	rsp, pkru, id, err := s.Task(2)
	if err != nil {
		t.Fatal(err)
	}
	if rsp != 0xbeef0 || pkru != mpk.PKRU(0x1234) || id != 77 {
		t.Fatalf("task entry = %#x %#x %d", uint64(rsp), uint32(pkru), id)
	}
	// Entries are 32 bytes apart per core.
	if s.TaskMapEntry(3)-s.TaskMapEntry(2) != 32 {
		t.Fatal("task map stride")
	}
	if err := s.SetRuntimeStack(1, s.RuntimeStackTop(1)); err != nil {
		t.Fatal(err)
	}
	v, f := s.AS.Read(s.RuntimeMapEntry(1), 8, s.RuntimePKRU())
	if f != nil || mem.Addr(v) != s.RuntimeStackTop(1) {
		t.Fatalf("runtime map entry = %#x, %v", v, f)
	}
}

func TestFnVec(t *testing.T) {
	s := newSMAS(t, 1)
	if err := s.SetFnVec(3, 0x1234000); err != nil {
		t.Fatal(err)
	}
	v, f := s.AS.Read(s.FnVecSlot(3), 8, s.AppPKRU(1)) // apps may READ the vector
	if f != nil || v != 0x1234000 {
		t.Fatalf("fnvec read: %v %v", v, f)
	}
	// But never write it.
	if f := s.AS.Write(s.FnVecSlot(3), 8, 0xbad, s.AppPKRU(1)); f == nil {
		t.Fatal("app overwrote the function vector")
	}
	if err := s.SetFnVec(-1, 1); err == nil {
		t.Fatal("negative fid")
	}
	if err := s.SetFnVec(MaxRuntimeFuncs, 1); err == nil {
		t.Fatal("fid beyond vector")
	}
}

func TestInstallTextExecOnly(t *testing.T) {
	s := newSMAS(t, 1)
	base, err := s.InstallText([]cpu.Instr{cpu.MovImm{Dst: cpu.RAX, Imm: 9}, cpu.Halt{}}, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Text must be executable-only: reads fault even for the runtime
	// PKRU (page permissions, not MPK, enforce this).
	if _, f := s.AS.Read(base, 8, s.RuntimePKRU()); f == nil {
		t.Fatal("text readable")
	}
	if f := s.AS.Write(base, 8, 1, s.RuntimePKRU()); f == nil {
		t.Fatal("text writable")
	}
	// And executable by a core with a strict PKRU.
	core := s.Machine.Core(0)
	core.AS = s.AS
	core.PKRU = mpk.AllowNoneValue
	core.PC = base
	core.Run(5)
	if core.Regs[cpu.RAX] != 9 {
		t.Fatal("text did not execute")
	}
	if _, err := s.InstallText(nil, 1); err == nil {
		t.Fatal("empty program must fail")
	}
}

func TestLoaderRejectsWrPkru(t *testing.T) {
	s := newSMAS(t, 1)
	evil := &Program{
		Name: "evil",
		Text: []cpu.Instr{
			cpu.MovImm{Dst: cpu.RAX, Imm: 0}, // PKRU=allow-all
			cpu.WrPkru{},
			cpu.Halt{},
		},
		PIE: true,
	}
	_, err := s.Load(evil)
	if err == nil {
		t.Fatal("loader accepted WRPKRU in application code")
	}
	var ie *InspectionError
	if !errorsAs(err, &ie) {
		t.Fatalf("error type = %T: %v", err, err)
	}
	if ie.Index != 1 {
		t.Fatalf("flagged index %d, want 1", ie.Index)
	}
	if !strings.Contains(err.Error(), "wrpkru") {
		t.Fatalf("error should name the instruction: %v", err)
	}
}

func errorsAs(err error, target **InspectionError) bool {
	for err != nil {
		if e, ok := err.(*InspectionError); ok {
			*target = e
			return true
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}

func TestLoaderRejectsOtherPrivilegedInstrs(t *testing.T) {
	s := newSMAS(t, 1)
	for _, bad := range []cpu.Instr{
		cpu.SendUIPI{IdxReg: cpu.RDI},
		cpu.UiRet{},
		cpu.Hook{Name: "smuggled"},
	} {
		p := &Program{Name: "evil", Text: []cpu.Instr{bad}, PIE: true}
		if _, err := s.Load(p); err == nil {
			t.Fatalf("loader accepted %T", bad)
		}
	}
}

func TestLoaderRejectsNonPIE(t *testing.T) {
	s := newSMAS(t, 1)
	p := &Program{Name: "static", Text: []cpu.Instr{cpu.Halt{}}, PIE: false}
	if _, err := s.Load(p); err == nil {
		t.Fatal("non-PIE must be rejected (§5.3)")
	}
}

func TestLoaderValidation(t *testing.T) {
	s := newSMAS(t, 1)
	if _, err := s.Load(nil); err == nil {
		t.Fatal("nil program")
	}
	if _, err := s.Load(&Program{Name: "x", PIE: true}); err == nil {
		t.Fatal("empty text")
	}
	if _, err := s.Load(&Program{Name: "x", PIE: true,
		Text: []cpu.Instr{cpu.Halt{}}, EntryOffset: 5}); err == nil {
		t.Fatal("bad entry offset")
	}
}

func TestLoadGoodProgram(t *testing.T) {
	s := newSMAS(t, 1)
	p := &Program{
		Name:      "good",
		Text:      []cpu.Instr{cpu.MovImm{Dst: cpu.RAX, Imm: 1}, cpu.Halt{}},
		DataSize:  mem.PageSize,
		HeapSize:  2 * mem.PageSize,
		StackSize: mem.PageSize,
		PIE:       true,
	}
	img, err := s.Load(p)
	if err != nil {
		t.Fatal(err)
	}
	if img.Entry != img.TextBase {
		t.Fatal("entry should be text base for offset 0")
	}
	if img.Region.Key == 0 {
		t.Fatal("region must have a real key")
	}
	if img.HeapBase < img.DataBase {
		t.Fatal("heap below data")
	}
	// The program executes from its entry under its own PKRU and can
	// use its region.
	core := s.Machine.Core(0)
	core.AS = s.AS
	core.PKRU = s.AppPKRU(img.Region.Key)
	core.PC = img.Entry
	core.Regs[cpu.RSP] = uint64(img.Region.StackTop)
	core.Run(5)
	if core.Fault != nil || core.Regs[cpu.RAX] != 1 {
		t.Fatalf("program run: fault=%v rax=%d", core.Fault, core.Regs[cpu.RAX])
	}
}

func TestLoadLibraryInspects(t *testing.T) {
	s := newSMAS(t, 1)
	if _, err := s.LoadLibrary("libevil", []cpu.Instr{cpu.WrPkru{}}, 1); err == nil {
		t.Fatal("dlopen path accepted WRPKRU")
	}
	base, err := s.LoadLibrary("libgood", []cpu.Instr{cpu.Ret{}}, 1)
	if err != nil || base == 0 {
		t.Fatalf("good library: %v", err)
	}
}

func TestMProtectExecProhibited(t *testing.T) {
	s := newSMAS(t, 1)
	if err := s.MProtectExec(0x10000, mem.PageSize); err == nil {
		t.Fatal("mprotect(PROT_EXEC) must always be refused (§4.2)")
	}
}

func TestAttachKProcessSharesEverything(t *testing.T) {
	s := newSMAS(t, 2)
	r, err := s.AllocRegion(mem.PageSize)
	if err != nil {
		t.Fatal(err)
	}
	base, err := s.InstallText([]cpu.Instr{cpu.MovImm{Dst: cpu.RBX, Imm: 5}, cpu.Halt{}}, r.Key)
	if err != nil {
		t.Fatal(err)
	}
	if f := s.AS.Write(r.Base, 8, 1234, s.RuntimePKRU()); f != nil {
		t.Fatal(f)
	}
	kas := mem.NewAddressSpace(s.Machine.Phys)
	if err := s.AttachKProcess(kas); err != nil {
		t.Fatal(err)
	}
	// Data visible through the kProcess mapping.
	v, f := kas.Read(r.Base, 8, s.RuntimePKRU())
	if f != nil || v != 1234 {
		t.Fatalf("shared data: %v %v", v, f)
	}
	// Code executes through the kProcess mapping.
	core := s.Machine.Core(1)
	core.AS = kas
	core.PKRU = s.AppPKRU(r.Key)
	core.PC = base
	core.Regs[cpu.RSP] = uint64(r.StackTop)
	core.Run(5)
	if core.Regs[cpu.RBX] != 5 {
		t.Fatal("shared text did not execute in kProcess")
	}
	// Task map writes by the runtime are visible to gates running in any
	// kProcess.
	if err := s.SetTask(0, 0xabc0, mpk.PKRU(1), 9); err != nil {
		t.Fatal(err)
	}
	v, f = kas.Read(s.TaskMapEntry(0)+TaskRSPOff, 8, s.RuntimePKRU())
	if f != nil || v != 0xabc0 {
		t.Fatalf("task map not shared: %v %v", v, f)
	}
}

func TestTextRegionExhaustion(t *testing.T) {
	s := newSMAS(t, 1)
	big := make([]cpu.Instr, (TextMax/cpu.InstrSize)+1)
	for i := range big {
		big[i] = cpu.Work{N: 1}
	}
	if _, err := s.InstallText(big, 1); err == nil {
		t.Fatal("text overflow must fail")
	}
}

func TestAppPKRUShape(t *testing.T) {
	s := newSMAS(t, 1)
	p := s.AppPKRU(5)
	if !p.CanWrite(5) || !p.CanWrite(0) {
		t.Fatal("own key / key 0 must be writable")
	}
	if !p.CanRead(PipeKey) || p.CanWrite(PipeKey) {
		t.Fatal("pipe must be read-only")
	}
	if p.CanRead(RuntimeKey) {
		t.Fatal("runtime must be invisible")
	}
	for k := mpk.PKey(1); k < 14; k++ {
		if k != 5 && p.CanRead(k) {
			t.Fatalf("foreign key %d readable", k)
		}
	}
}
