package smas

import (
	"fmt"

	"vessel/internal/cpu"
	"vessel/internal/mem"
	"vessel/internal/mpk"
)

// This file implements the VESSEL program loader (§5.2.1). It replaces a
// kProcess's booting program with the real application: validate the image,
// statically inspect the code for illegal WRPKRU (and other privileged-
// state) instructions, install the text executable-only into the shared
// text region, carve out the uProcess region for data/stack/heap, and
// return the entry state. It also enforces the §4.2 hardening: any attempt
// to map new executable memory outside the loader is refused — on-demand
// loading must go through LoadLibrary, which re-runs the inspection.

// Program is a loadable image: the simulated equivalent of a PIE ELF
// executable plus its libraries.
type Program struct {
	Name string
	// Text is the program's code. The loader inspects and installs it.
	Text []cpu.Instr
	// Asm, when non-nil, takes precedence over Text: the loader
	// assembles it at the final text base (the PIE relocation step) and
	// installs the result.
	Asm *cpu.Assembler
	// DataSize, StackSize and HeapSize dimension the uProcess region.
	DataSize  uint64
	StackSize uint64
	HeapSize  uint64
	// PIE must be true: position-dependent executables would collide in
	// the shared address space (§5.3).
	PIE bool
	// EntryOffset is the entry point, as an instruction index into Text.
	EntryOffset int
}

// Image is a loaded program: where its pieces landed in SMAS.
type Image struct {
	Name     string
	TextBase mem.Addr
	Entry    mem.Addr
	Region   *Region
	// DataBase/HeapBase partition the region: data at the bottom, heap
	// above it, stack at the top growing down.
	DataBase mem.Addr
	HeapBase mem.Addr
	HeapSize uint64
}

// InspectionError reports an illegal instruction found during static code
// inspection.
type InspectionError struct {
	Program string
	Index   int
	Instr   cpu.Instr
}

func (e *InspectionError) Error() string {
	return fmt.Sprintf("smas: %s: illegal instruction %q at index %d rejected by code inspection",
		e.Program, e.Instr.String(), e.Index)
}

// Inspect statically scans code for instructions an application image must
// not contain: WRPKRU (privilege escalation), SENDUIPI and UIRET (interrupt
// state manipulation belongs to the runtime), and runtime hooks. This is
// the ERIM/Hodor-style inspection the loader performs during validation
// (§5.2.1), minus their binary-rewriting subtleties — in the model, an
// instruction either is or is not of a forbidden type.
func Inspect(name string, code []cpu.Instr) error {
	for i, ins := range code {
		switch ins.(type) {
		case cpu.WrPkru, cpu.SendUIPI, cpu.UiRet:
			return &InspectionError{Program: name, Index: i, Instr: ins}
		case cpu.Hook:
			// Hooks are runtime-internal escape hatches; application
			// images must not carry them.
			return &InspectionError{Program: name, Index: i, Instr: ins}
		}
	}
	return nil
}

// Load validates, inspects, and installs a program, returning its image.
func (s *SMAS) Load(p *Program) (*Image, error) {
	if p == nil || (len(p.Text) == 0 && p.Asm == nil) {
		return nil, fmt.Errorf("smas: empty program")
	}
	if !p.PIE {
		return nil, fmt.Errorf("smas: %s: only PIE executables are supported (§5.3)", p.Name)
	}
	text := p.Text
	if p.Asm != nil {
		// Relocate against the base InstallText will choose.
		var err error
		text, err = p.Asm.Assemble(s.NextTextBase())
		if err != nil {
			return nil, fmt.Errorf("smas: %s: %w", p.Name, err)
		}
	}
	if len(text) == 0 {
		return nil, fmt.Errorf("smas: %s: empty program", p.Name)
	}
	if p.EntryOffset < 0 || p.EntryOffset >= len(text) {
		return nil, fmt.Errorf("smas: %s: entry offset %d out of range", p.Name, p.EntryOffset)
	}
	if err := Inspect(p.Name, text); err != nil {
		return nil, err
	}
	stack := p.StackSize
	if stack == 0 {
		stack = 4 * mem.PageSize
	}
	size := p.DataSize + p.HeapSize + stack
	region, err := s.AllocRegion(size)
	if err != nil {
		return nil, err
	}
	// Text pages are never re-tagged by the virtual-key layer: PKRU does
	// not mediate instruction fetch, and PermXOnly already blocks data
	// access, so in virtual mode text carries the runtime key rather
	// than a slot that may later belong to another region.
	textKey := region.Key
	if s.Virtual() {
		textKey = RuntimeKey
	}
	textBase, err := s.InstallText(text, textKey)
	if err != nil {
		s.FreeRegion(region)
		return nil, err
	}
	dataBase := region.Base
	heapBase := dataBase + mem.Addr((p.DataSize+7)/8*8)
	return &Image{
		Name:     p.Name,
		TextBase: textBase,
		Entry:    textBase + mem.Addr(p.EntryOffset*cpu.InstrSize),
		Region:   region,
		DataBase: dataBase,
		HeapBase: heapBase,
		HeapSize: p.HeapSize,
	}, nil
}

// LoadLibrary performs on-demand loading (the dlopen path of §5.3): the
// code is inspected while still non-executable, installed into the text
// region, and only then made reachable. It returns the library's base.
func (s *SMAS) LoadLibrary(name string, code []cpu.Instr, key mpk.PKey) (mem.Addr, error) {
	if err := Inspect(name, code); err != nil {
		return 0, err
	}
	return s.InstallText(code, key)
}

// MProtectExec models the runtime's syscall interposition for memory
// permissions (§4.2): any mmap/mprotect that would make pages executable is
// intercepted and prohibited; callers must use LoadLibrary, which inspects
// first. It always fails, by design.
func (s *SMAS) MProtectExec(base mem.Addr, length uint64) error {
	return fmt.Errorf("smas: mprotect(PROT_EXEC) at %#x is prohibited; use LoadLibrary for on-demand code",
		uint64(base))
}
