package smas

import (
	"fmt"

	"vessel/internal/mem"
	"vessel/internal/mpk"
	"vessel/internal/vpkey"
)

// This file threads the libmpk-style virtual-key layer (internal/vpkey)
// through SMAS. In virtual mode a uProcess region is identified by a
// virtual key that survives forever, while the hardware slot tagging its
// pages comes and goes: the vpkey.Table evicts the LRU unpinned region's
// slot when a 14th (or 40th, or 100th) region needs one, re-tagging the
// victim's data pages to the runtime key so no application PKRU can reach
// them until refill. Direct mode — the paper's fixed 13-key budget — is
// untouched: every virtual-mode branch below is behind s.Virtual().

// VirtualHeadroom is the nominal per-domain capacity reported once keys
// are virtualized. The real bound is address-space and memory, not the
// 4-bit hardware key field, so the cluster's placement logic just needs a
// number far above any realistic density test.
const VirtualHeadroom = 1 << 20

// EnableVirtualKeys switches the SMAS to virtualized protection keys. It
// must be called before any region is allocated: retrofitting live
// direct-mode regions would mean inventing virtual keys for pages the
// table never tagged.
func (s *SMAS) EnableVirtualKeys() error {
	if len(s.regions) != 0 || len(s.vregions) != 0 {
		return fmt.Errorf("smas: EnableVirtualKeys with %d live regions", len(s.regions)+len(s.vregions))
	}
	if s.VKeys != nil {
		return nil
	}
	// Evicted pages are fenced with RuntimeKey: the runtime PKRU
	// (AllowAll) still reaches them, every AppPKRU denies them. Slots are
	// the app-key range [1, RuntimeKey).
	s.VKeys = vpkey.New(s.AS, s.Keys, RuntimeKey, RuntimeKey)
	s.vregions = make(map[vpkey.VKey]*Region)
	return nil
}

// Virtual reports whether protection keys are virtualized.
func (s *SMAS) Virtual() bool { return s.VKeys != nil }

// KeysAvailable is the domain's remaining uProcess capacity as the
// placement layer should see it: free hardware keys in direct mode,
// effectively unbounded in virtual mode.
func (s *SMAS) KeysAvailable() int {
	if s.Virtual() {
		return VirtualHeadroom - len(s.vregions)
	}
	return s.Keys.Available()
}

// KeyOwned reports whether hardware key k is legitimately held by a live
// region — the self-healing reconciler frees in-use app keys this returns
// false for. In virtual mode ownership lives in the table (a slot moves
// between regions), not in a static region index.
func (s *SMAS) KeyOwned(k mpk.PKey) bool {
	if s.Virtual() {
		return s.VKeys.Holds(k)
	}
	_, ok := s.regions[k]
	return ok
}

// LiveRegionCount returns the number of live uProcess regions regardless
// of residency — in virtual mode more can be live than RegionKeys (which
// only sees resident slots) reports.
func (s *SMAS) LiveRegionCount() int {
	if s.Virtual() {
		return len(s.vregions)
	}
	return len(s.regions)
}

// TouchRegion makes a region's pages accessible under its own key on the
// given core and returns the hardware key a PKRU must grant, plus how
// many pages were re-tagged to get there (0 on the warm path). In direct
// mode this is a constant-time identity. In virtual mode it pins the
// region's virtual key to the core, refilling after an eviction if
// needed; Region.Key is updated so later readers see the current slot.
func (s *SMAS) TouchRegion(r *Region, core int) (mpk.PKey, int, error) {
	if !s.Virtual() {
		return r.Key, 0, nil
	}
	slot, pages, err := s.VKeys.Touch(r.VKey, core)
	if err != nil {
		return 0, 0, err
	}
	r.Key = slot
	return slot, pages, nil
}

// UnpinCore releases the core's virtual-key pin when it idles or is
// fenced, making the key evictable again. No-op in direct mode.
func (s *SMAS) UnpinCore(core int) {
	if s.Virtual() {
		s.VKeys.Unpin(core)
	}
}

// allocRegionVirtual is AllocRegion's virtual-mode body: a fresh virtual
// key, a slot from the table (evicting if the hardware is full), pages
// mapped under that slot and bound to the key for future re-tagging.
func (s *SMAS) allocRegionVirtual(size uint64) (*Region, error) {
	vk, slot, err := s.VKeys.Alloc()
	if err != nil {
		return nil, fmt.Errorf("smas: no evictable key slot: %w", err)
	}
	pages := (size + mem.PageSize - 1) / mem.PageSize
	if pages == 0 {
		pages = 1
	}
	base := s.dataCursor
	if err := s.AS.MapRange(base, pages*mem.PageSize, mem.PermRW, slot); err != nil {
		s.VKeys.Free(vk)
		return nil, err
	}
	if err := s.VKeys.Bind(vk, base, pages*mem.PageSize); err != nil {
		s.AS.Unmap(base, pages*mem.PageSize)
		s.VKeys.Free(vk)
		return nil, err
	}
	s.dataCursor += mem.Addr(pages*mem.PageSize) + mem.PageSize // guard gap
	r := &Region{
		Base:     base,
		Size:     pages * mem.PageSize,
		Key:      slot,
		VKey:     vk,
		StackTop: base + mem.Addr(pages*mem.PageSize),
	}
	s.vregions[vk] = r
	return r, nil
}

// freeRegionVirtual is FreeRegion's virtual-mode body. The virtual key
// must be unpinned (no core's live PKRU may still grant its slot); the
// slot, if resident, returns to the allocator inside VKeys.Free.
func (s *SMAS) freeRegionVirtual(r *Region) error {
	s.AS.Unmap(r.Base, r.Size)
	delete(s.vregions, r.VKey)
	return s.VKeys.Free(r.VKey)
}
