// Package smas implements the Shared Memory Address Space of §4.1 (Figure
// 5): one address space shared by every uProcess in a scheduling domain,
// split into
//
//   - uProcess regions (data/stack/heap), one MPK key each, private to the
//     owning uProcess;
//   - a text region holding every uProcess's code, the call gate, and the
//     runtime — executable-only, so any uProcess can *enter* the gate but
//     nobody can read or rewrite code;
//   - a runtime region (privileged data and per-core runtime stacks),
//     invisible to uProcesses;
//   - a message-pipe region, read-only to uProcesses, holding
//     CPUID_TO_TASK_MAP, CPUID_TO_RUNTIME_MAP, and the static function-
//     pointer vector the call gate calls through (§4.2).
//
// One domain supports 13 uProcess keys: of the 16 architectural keys, key 0
// is reserved for unmanaged kProcess memory, one key protects the runtime
// region and one the message pipe.
package smas

import (
	"fmt"

	"vessel/internal/cpu"
	"vessel/internal/mem"
	"vessel/internal/mpk"
	"vessel/internal/vpkey"
)

// Region layout constants. All addresses live inside the shared mapping
// that the manager creates with one big mmap (§5.1).
const (
	// TextBase is where installed text segments start; the region grows
	// upward as programs are loaded.
	TextBase mem.Addr = 0x0100_0000
	TextMax  uint64   = 8 << 20

	// PipeBase holds the message-pipe region.
	PipeBase  mem.Addr = 0x0200_0000
	pipePages          = 4

	// RuntimeBase holds privileged runtime data; per-core runtime stacks
	// follow at RuntimeStacksBase.
	RuntimeBase       mem.Addr = 0x0300_0000
	runtimeDataPages           = 16
	RuntimeStacksBase mem.Addr = RuntimeBase + runtimeDataPages*mem.PageSize

	// UProcBase is where uProcess regions are carved out.
	UProcBase mem.Addr = 0x1000_0000
)

// Message-pipe internal layout.
const (
	// taskMapOff: CPUID_TO_TASK_MAP, one entry per core.
	taskMapOff = 0
	// runtimeMapOff: CPUID_TO_RUNTIME_MAP.
	runtimeMapOff = 4096
	// fnVecOff: static function-pointer vector.
	fnVecOff = 8192
	// entrySize is the per-core map entry size.
	entrySize = 32
	// MaxRuntimeFuncs bounds the function-pointer vector.
	MaxRuntimeFuncs = 256
)

// Offsets within a CPUID_TO_TASK_MAP entry (used by gate code).
const (
	TaskRSPOff  = 0  // saved application stack pointer
	TaskPKRUOff = 8  // the task's PKRU value
	TaskIDOff   = 16 // opaque task identifier maintained by the runtime
)

// MaxUProcs is the number of uProcesses one scheduling domain supports:
// 16 keys − key 0 − runtime key − pipe key (§4.1).
const MaxUProcs = 13

// Keys with fixed roles.
const (
	RuntimeKey mpk.PKey = 14
	PipeKey    mpk.PKey = 15
)

// SMAS is one scheduling domain's shared memory address space.
type SMAS struct {
	Machine *cpu.Machine
	// AS is the manager's master mapping; kProcesses share its frames.
	AS   *mem.AddressSpace
	Keys *mpk.Allocator

	cores      int
	textCursor mem.Addr
	dataCursor mem.Addr
	// regions indexes live uProcess regions by their protection key — the
	// authoritative owner set reconciliation audits compare the allocator
	// against: a key in use with no live region is a leak. Only populated
	// in direct mode: under virtualization a hardware key is a transient
	// slot, not a region's identity.
	regions map[mpk.PKey]*Region

	// VKeys, when non-nil, virtualizes protection keys (EnableVirtualKeys):
	// regions are identified by virtual keys in vregions and hardware
	// slots move between them under LRU eviction.
	VKeys    *vpkey.Table
	vregions map[vpkey.VKey]*Region
}

// New creates and maps a domain's SMAS on the given machine for the given
// number of managed cores.
func New(m *cpu.Machine, cores int) (*SMAS, error) {
	if cores <= 0 || cores > 128 {
		return nil, fmt.Errorf("smas: unreasonable core count %d", cores)
	}
	s := &SMAS{
		Machine:    m,
		AS:         mem.NewAddressSpace(m.Phys),
		Keys:       mpk.NewAllocator(),
		cores:      cores,
		textCursor: TextBase,
		dataCursor: UProcBase,
		regions:    make(map[mpk.PKey]*Region),
	}
	// Reserve the fixed-role keys so region allocation never hands them
	// out: allocate everything, then release the 13 uProcess keys.
	for i := 0; i < 15; i++ {
		if _, err := s.Keys.Alloc(); err != nil {
			return nil, fmt.Errorf("smas: reserving fixed keys: %w", err)
		}
	}
	if err := freeRange(s.Keys, 1, RuntimeKey-1); err != nil {
		return nil, err
	}
	// Message pipe: RW pages tagged PipeKey. uProcess PKRUs grant
	// read-only on this key; the runtime PKRU grants RW.
	if err := s.AS.MapRange(PipeBase, pipePages*mem.PageSize, mem.PermRW, PipeKey); err != nil {
		return nil, err
	}
	// Runtime data + stacks: RW pages tagged RuntimeKey, invisible to
	// uProcesses.
	runtimeSize := uint64(runtimeDataPages*mem.PageSize) + uint64(cores)*mem.PageSize
	if err := s.AS.MapRange(RuntimeBase, runtimeSize, mem.PermRW, RuntimeKey); err != nil {
		return nil, err
	}
	return s, nil
}

// freeRange releases keys [lo, hi] back to the allocator.
func freeRange(a *mpk.Allocator, lo, hi mpk.PKey) error {
	for k := lo; k <= hi; k++ {
		if err := a.Free(k); err != nil {
			return err
		}
	}
	return nil
}

// Cores returns the number of managed cores.
func (s *SMAS) Cores() int { return s.cores }

// RuntimePKRU is the privileged-mode register value: full access to every
// key (the userspace analogue of kernel mode).
func (s *SMAS) RuntimePKRU() mpk.PKRU { return mpk.AllowAllValue }

// AppPKRU builds the PKRU value for a uProcess owning key k: its own region
// read-write, the message pipe read-only, key 0 (unmanaged kProcess memory)
// read-write, everything else inaccessible.
func (s *SMAS) AppPKRU(k mpk.PKey) mpk.PKRU {
	return mpk.AllowNoneValue.
		WithAccess(0, true, true).
		WithAccess(k, true, true).
		WithAccess(PipeKey, true, false)
}

// Region is a uProcess's private area within SMAS.
type Region struct {
	Base mem.Addr
	Size uint64
	// Key is the hardware protection key tagging the region's pages. In
	// direct mode it is fixed for the region's lifetime; in virtual mode
	// it is the slot granted at the last TouchRegion and may be stale
	// while the region is evicted.
	Key mpk.PKey
	// VKey is the region's virtual protection key (virtual mode only;
	// 0 in direct mode).
	VKey vpkey.VKey
	// StackTop is the initial stack pointer (stacks grow down from the
	// end of the region).
	StackTop mem.Addr
}

// AllocRegion carves out a uProcess region of at least size bytes, tags it
// with a freshly allocated key, and returns it. Mirrors the manager's
// pkey_mprotect of a newly created region (§5.1).
func (s *SMAS) AllocRegion(size uint64) (*Region, error) {
	if s.Virtual() {
		return s.allocRegionVirtual(size)
	}
	key, err := s.Keys.Alloc()
	if err != nil {
		return nil, fmt.Errorf("smas: domain full (13 uProcesses max): %w", err)
	}
	if key >= RuntimeKey {
		// Defensive: fixed-role keys must never be handed out.
		return nil, fmt.Errorf("smas: allocator returned reserved key %d", key)
	}
	pages := (size + mem.PageSize - 1) / mem.PageSize
	if pages == 0 {
		pages = 1
	}
	base := s.dataCursor
	if err := s.AS.MapRange(base, pages*mem.PageSize, mem.PermRW, key); err != nil {
		s.Keys.Free(key)
		return nil, err
	}
	s.dataCursor += mem.Addr(pages*mem.PageSize) + mem.PageSize // guard gap
	r := &Region{
		Base:     base,
		Size:     pages * mem.PageSize,
		Key:      key,
		StackTop: base + mem.Addr(pages*mem.PageSize),
	}
	s.regions[key] = r
	return r, nil
}

// FreeRegion unmaps a region and releases its key, as uProcess destruction
// does (§5.1).
func (s *SMAS) FreeRegion(r *Region) error {
	if s.Virtual() {
		return s.freeRegionVirtual(r)
	}
	s.AS.Unmap(r.Base, r.Size)
	delete(s.regions, r.Key)
	return s.Keys.Free(r.Key)
}

// RegionKeys returns the protection keys backing live uProcess regions, in
// ascending key order — the owner set self-healing reconciliation compares
// against the allocator's in-use set to find leaked keys.
func (s *SMAS) RegionKeys() []mpk.PKey {
	var out []mpk.PKey
	for k := mpk.PKey(1); k < RuntimeKey; k++ {
		if s.Virtual() {
			if s.VKeys.Holds(k) {
				out = append(out, k)
			}
			continue
		}
		if _, ok := s.regions[k]; ok {
			out = append(out, k)
		}
	}
	return out
}

// NextTextBase returns the address the next InstallText call will use —
// needed by code generators (the call gate) that must assemble
// position-dependent jumps before installing.
func (s *SMAS) NextTextBase() mem.Addr { return s.textCursor }

// InstallText maps fresh executable-only pages, installs the program, and
// returns its base address. Text pages carry the given key — the paper tags
// a uProcess's text with its own key but relies on page permissions (no
// read, no write) for protection, since PKRU does not mediate execution.
func (s *SMAS) InstallText(prog []cpu.Instr, key mpk.PKey) (mem.Addr, error) {
	size := uint64(len(prog) * cpu.InstrSize)
	if size == 0 {
		return 0, fmt.Errorf("smas: empty program")
	}
	pages := (size + mem.PageSize - 1) / mem.PageSize
	base := s.textCursor
	if uint64(base-TextBase)+pages*mem.PageSize > TextMax {
		return 0, fmt.Errorf("smas: text region exhausted")
	}
	if err := s.AS.MapRange(base, pages*mem.PageSize, mem.PermXOnly, key); err != nil {
		return 0, err
	}
	if err := s.Machine.InstallCode(s.AS, base, prog); err != nil {
		return 0, err
	}
	s.textCursor += mem.Addr(pages * mem.PageSize)
	return base, nil
}

// --- message-pipe accessors -------------------------------------------------
//
// Writes go through the address space with the runtime PKRU: they are
// privileged stores the runtime performs; uProcess code can only read these
// words (PipeKey is read-only in every AppPKRU).

// TaskMapEntry returns the address of core's CPUID_TO_TASK_MAP entry.
func (s *SMAS) TaskMapEntry(core int) mem.Addr {
	return PipeBase + taskMapOff + mem.Addr(core*entrySize)
}

// RuntimeMapEntry returns the address of core's CPUID_TO_RUNTIME_MAP entry.
func (s *SMAS) RuntimeMapEntry(core int) mem.Addr {
	return PipeBase + runtimeMapOff + mem.Addr(core*entrySize)
}

// FnVecSlot returns the address of function-vector slot fid.
func (s *SMAS) FnVecSlot(fid int) mem.Addr {
	return PipeBase + fnVecOff + mem.Addr(fid*8)
}

// SetFnVec installs a runtime function address into the vector (privileged).
func (s *SMAS) SetFnVec(fid int, fn mem.Addr) error {
	if fid < 0 || fid >= MaxRuntimeFuncs {
		return fmt.Errorf("smas: function id %d out of range", fid)
	}
	if f := s.AS.Write(s.FnVecSlot(fid), 8, uint64(fn), s.RuntimePKRU()); f != nil {
		return f
	}
	return nil
}

// SetRuntimeStack records core's runtime stack top in CPUID_TO_RUNTIME_MAP.
func (s *SMAS) SetRuntimeStack(core int, top mem.Addr) error {
	if f := s.AS.Write(s.RuntimeMapEntry(core)+TaskRSPOff, 8, uint64(top), s.RuntimePKRU()); f != nil {
		return f
	}
	return nil
}

// RuntimeStackTop returns the conventional runtime stack top for a core.
func (s *SMAS) RuntimeStackTop(core int) mem.Addr {
	return RuntimeStacksBase + mem.Addr((core+1)*mem.PageSize)
}

// SetTask records the current task's saved RSP and PKRU for a core
// (privileged; the gate itself updates RSP on entry).
func (s *SMAS) SetTask(core int, rsp mem.Addr, pkru mpk.PKRU, taskID uint64) error {
	e := s.TaskMapEntry(core)
	rt := s.RuntimePKRU()
	if f := s.AS.Write(e+TaskRSPOff, 8, uint64(rsp), rt); f != nil {
		return f
	}
	if f := s.AS.Write(e+TaskPKRUOff, 8, uint64(uint32(pkru)), rt); f != nil {
		return f
	}
	if f := s.AS.Write(e+TaskIDOff, 8, taskID, rt); f != nil {
		return f
	}
	return nil
}

// Task reads back a core's task-map entry (privileged).
func (s *SMAS) Task(core int) (rsp mem.Addr, pkru mpk.PKRU, taskID uint64, err error) {
	e := s.TaskMapEntry(core)
	rt := s.RuntimePKRU()
	v, f := s.AS.Read(e+TaskRSPOff, 8, rt)
	if f != nil {
		return 0, 0, 0, f
	}
	rsp = mem.Addr(v)
	v, f = s.AS.Read(e+TaskPKRUOff, 8, rt)
	if f != nil {
		return 0, 0, 0, f
	}
	pkru = mpk.PKRU(uint32(v))
	taskID, f = s.AS.Read(e+TaskIDOff, 8, rt)
	if f != nil {
		return 0, 0, 0, f
	}
	return rsp, pkru, taskID, nil
}

// RuntimeHeapBase returns the start of the runtime region's data area,
// usable for privileged bookkeeping structures.
func (s *SMAS) RuntimeHeapBase() mem.Addr { return RuntimeBase }

// AttachKProcess maps the whole SMAS (text, pipe, runtime, and all current
// uProcess regions) into a kProcess address space — the booting program's
// first act (§5.1).
func (s *SMAS) AttachKProcess(as *mem.AddressSpace) error {
	if s.textCursor > TextBase {
		if err := as.ShareRange(s.AS, TextBase, uint64(s.textCursor-TextBase)); err != nil {
			return err
		}
	}
	if err := as.ShareRange(s.AS, PipeBase, pipePages*mem.PageSize); err != nil {
		return err
	}
	runtimeSize := uint64(runtimeDataPages*mem.PageSize) + uint64(s.cores)*mem.PageSize
	if err := as.ShareRange(s.AS, RuntimeBase, runtimeSize); err != nil {
		return err
	}
	// Share each mapped uProcess page individually (regions may be
	// interleaved with guard gaps).
	for a := UProcBase; a < s.dataCursor; a += mem.PageSize {
		if s.AS.Mapped(a) {
			if err := as.ShareRange(s.AS, a, mem.PageSize); err != nil {
				return err
			}
		}
	}
	return nil
}
