package smas

import (
	"testing"

	"vessel/internal/cpu"
	"vessel/internal/mem"
)

func TestAccessors(t *testing.T) {
	s := newSMAS(t, 3)
	if s.Cores() != 3 {
		t.Fatal("cores")
	}
	if s.NextTextBase() != TextBase {
		t.Fatal("initial text base")
	}
	if s.RuntimeHeapBase() != RuntimeBase {
		t.Fatal("runtime heap base")
	}
	if _, err := s.InstallText([]cpu.Instr{cpu.Halt{}}, 1); err != nil {
		t.Fatal(err)
	}
	if s.NextTextBase() != TextBase+mem.PageSize {
		t.Fatalf("text base after install = %#x", uint64(s.NextTextBase()))
	}
}

func TestAllocRegionZeroSize(t *testing.T) {
	s := newSMAS(t, 1)
	r, err := s.AllocRegion(0)
	if err != nil {
		t.Fatal(err)
	}
	if r.Size != mem.PageSize {
		t.Fatalf("zero-size region rounds to one page, got %d", r.Size)
	}
}

func TestLoadWithAssemblerErrors(t *testing.T) {
	s := newSMAS(t, 1)
	// Undefined label surfaces as a load error.
	bad := cpu.NewAssembler()
	bad.JmpTo("nowhere")
	if _, err := s.Load(&Program{Name: "bad", Asm: bad, PIE: true}); err == nil {
		t.Fatal("assembler error not surfaced")
	}
	// Empty assembler.
	if _, err := s.Load(&Program{Name: "empty", Asm: cpu.NewAssembler(), PIE: true}); err == nil {
		t.Fatal("empty assembler accepted")
	}
}

func TestFreeRegionTwice(t *testing.T) {
	s := newSMAS(t, 1)
	r, err := s.AllocRegion(mem.PageSize)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.FreeRegion(r); err != nil {
		t.Fatal(err)
	}
	if err := s.FreeRegion(r); err == nil {
		t.Fatal("double free of region key must fail")
	}
}

func TestTaskMapAllCores(t *testing.T) {
	s := newSMAS(t, 8)
	for core := 0; core < 8; core++ {
		if err := s.SetTask(core, mem.Addr(0x1000*core), 0, uint64(core)); err != nil {
			t.Fatal(err)
		}
		if err := s.SetRuntimeStack(core, s.RuntimeStackTop(core)); err != nil {
			t.Fatal(err)
		}
	}
	for core := 0; core < 8; core++ {
		rsp, _, id, err := s.Task(core)
		if err != nil {
			t.Fatal(err)
		}
		if rsp != mem.Addr(0x1000*core) || id != uint64(core) {
			t.Fatalf("core %d entry corrupted", core)
		}
	}
	// Runtime stacks are distinct per core.
	if s.RuntimeStackTop(0) == s.RuntimeStackTop(1) {
		t.Fatal("runtime stacks alias")
	}
}
