package mem

import (
	"bytes"
	"testing"

	"vessel/internal/mpk"
)

// fixture3Pages maps three consecutive pages tagged with pkeys 1, 2, 3 —
// the cross-page boundary fixture for the batched bulk accessors.
func fixture3Pages(t *testing.T) *AddressSpace {
	t.Helper()
	as := NewAddressSpace(NewPhysical())
	for i, key := range []mpk.PKey{1, 2, 3} {
		base := Addr(0x1000 + i*PageSize)
		if err := as.MapRange(base, PageSize, PermRW, key); err != nil {
			t.Fatal(err)
		}
	}
	return as
}

// TestBulkCrossPage drives ReadBytes/WriteBytes across three pages with
// differing pkeys and checks the fault fires on the exact failing page,
// at the first byte the copy would have touched there.
func TestBulkCrossPage(t *testing.T) {
	as := fixture3Pages(t)
	all := mpk.AllowAllValue

	// A write spanning all three pages, starting mid-page.
	start := Addr(0x1000 + PageSize/2)
	span := 2*PageSize + 100
	data := make([]byte, span)
	for i := range data {
		data[i] = byte(i)
	}
	if f := as.WriteBytes(start, data, all); f != nil {
		t.Fatal(f)
	}
	got, f := as.ReadBytes(start, span, all)
	if f != nil {
		t.Fatal(f)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("cross-page round trip mismatch")
	}

	// Deny only the middle page (pkey 2): the fault must land on the
	// first byte of page 2 — exactly where a per-byte walk stops.
	noMid := mpk.AllowAllValue.WithAccess(2, false, false)
	_, f = as.ReadBytes(start, span, noMid)
	if f == nil || f.Kind != FaultPKU || f.Addr != 0x2000 {
		t.Fatalf("read fault = %v, want pkey fault at 0x2000", f)
	}
	if f = as.WriteBytes(start, data, noMid); f == nil || f.Kind != FaultPKU || f.Addr != 0x2000 {
		t.Fatalf("write fault = %v, want pkey fault at 0x2000", f)
	}

	// Deny only the last page: the first half-page and the middle page
	// were already written when the fault fired (partial writes up to
	// the failing page stay visible — documented on WriteBytes).
	if f := as.WriteBytes(start, data, all); f != nil {
		t.Fatal(f)
	}
	noLast := mpk.AllowAllValue.WithAccess(3, false, false)
	zero := make([]byte, span)
	if f = as.WriteBytes(start, zero, noLast); f == nil || f.Kind != FaultPKU || f.Addr != 0x3000 {
		t.Fatalf("write fault = %v, want pkey fault at 0x3000", f)
	}
	before, f := as.ReadBytes(start, int(0x3000-start), all)
	if f != nil {
		t.Fatal(f)
	}
	if !bytes.Equal(before, zero[:len(before)]) {
		t.Fatal("pages before the failing page must hold the partial write")
	}
	after, f := as.ReadBytes(0x3000, 100, all)
	if f != nil {
		t.Fatal(f)
	}
	if !bytes.Equal(after, data[len(before):len(before)+100]) {
		t.Fatal("the failing page must be untouched")
	}
}

func TestReadCString(t *testing.T) {
	as := fixture3Pages(t)
	all := mpk.AllowAllValue

	// A string crossing the page-1/page-2 boundary.
	start := Addr(0x2000 - 3)
	if f := as.WriteBytes(start, []byte("hello\x00"), all); f != nil {
		t.Fatal(f)
	}
	s, f := as.ReadCString(start, 64, all)
	if f != nil || s != "hello" {
		t.Fatalf("got %q, %v", s, f)
	}

	// The NUL sits before page 2: a PKRU that denies page 2 must not
	// matter when the scan terminates on page 1.
	noMid := mpk.AllowAllValue.WithAccess(2, false, false)
	if f := as.WriteBytes(0x1ff0, []byte("hi\x00"), all); f != nil {
		t.Fatal(f)
	}
	if s, f := as.ReadCString(0x1ff0, 64, noMid); f != nil || s != "hi" {
		t.Fatalf("got %q, %v (pages past the NUL must never be checked)", s, f)
	}

	// Unterminated run into a denied page faults at that page's start.
	if f := as.WriteBytes(0x1ff8, bytes.Repeat([]byte{'x'}, 8), all); f != nil {
		t.Fatal(f)
	}
	if _, f := as.ReadCString(0x1ff8, 64, noMid); f == nil || f.Kind != FaultPKU || f.Addr != 0x2000 {
		t.Fatalf("fault = %v, want pkey fault at 0x2000", f)
	}

	// No NUL within max: the full run comes back.
	if s, f := as.ReadCString(0x1ff8, 6, all); f != nil || s != "xxxxxx" {
		t.Fatalf("got %q, %v", s, f)
	}
}

// tlbAS builds an address space with a warm TLB over one RW page at 0x1000
// (pkey 1) backed by frame f0, plus a donor space for ShareRange remaps.
func tlbFixture(t *testing.T) (as, donor *AddressSpace, tlb *TLB) {
	t.Helper()
	phys := NewPhysical()
	as = NewAddressSpace(phys)
	if err := as.MapRange(0x1000, PageSize, PermRW, 1); err != nil {
		t.Fatal(err)
	}
	donor = NewAddressSpace(phys)
	if err := donor.MapRange(0x1000, PageSize, PermRW, 2); err != nil {
		t.Fatal(err)
	}
	tlb = &TLB{}
	var f Fault
	if _, ok := as.ReadVia(tlb, 0x1000, 8, mpk.AllowAllValue, &f); !ok {
		t.Fatalf("warming read: %v", &f)
	}
	if tlb.Misses != 1 {
		t.Fatalf("warming read should miss once, got %d", tlb.Misses)
	}
	tlb.Flushes = 0 // discard the initial binding flush
	return as, donor, tlb
}

// TestTLBCoherence is the table-driven coherence check: each mutation runs
// against a warm TLB, and the very next access through that TLB must
// observe the post-mutation state.
func TestTLBCoherence(t *testing.T) {
	all := mpk.AllowAllValue
	cases := []struct {
		name   string
		mutate func(t *testing.T, as, donor *AddressSpace)
		verify func(t *testing.T, as *AddressSpace, tlb *TLB)
	}{
		{
			name:   "unmap",
			mutate: func(t *testing.T, as, _ *AddressSpace) { as.Unmap(0x1000, PageSize) },
			verify: func(t *testing.T, as *AddressSpace, tlb *TLB) {
				var f Fault
				if _, ok := as.ReadVia(tlb, 0x1000, 8, all, &f); ok || f.Kind != FaultNotMapped {
					t.Fatalf("read after Unmap: ok=%v fault=%v", ok, &f)
				}
			},
		},
		{
			name: "protect",
			mutate: func(t *testing.T, as, _ *AddressSpace) {
				if err := as.Protect(0x1000, PageSize, PermRead); err != nil {
					t.Fatal(err)
				}
			},
			verify: func(t *testing.T, as *AddressSpace, tlb *TLB) {
				var f Fault
				if ok := as.WriteVia(tlb, 0x1000, 8, 1, all, &f); ok || f.Kind != FaultPerm {
					t.Fatalf("write after Protect(r--): ok=%v fault=%v", ok, &f)
				}
			},
		},
		{
			name: "setpkey",
			mutate: func(t *testing.T, as, _ *AddressSpace) {
				if err := as.SetPKey(0x1000, PageSize, 5); err != nil {
					t.Fatal(err)
				}
			},
			verify: func(t *testing.T, as *AddressSpace, tlb *TLB) {
				no5 := all.WithAccess(5, false, false)
				var f Fault
				if _, ok := as.ReadVia(tlb, 0x1000, 8, no5, &f); ok || f.Kind != FaultPKU {
					t.Fatalf("read after SetPKey(5) under deny-5: ok=%v fault=%v", ok, &f)
				}
			},
		},
		{
			name: "shareRange-remap",
			mutate: func(t *testing.T, as, donor *AddressSpace) {
				// Remap 0x1000 to the donor's (different) frame.
				var f Fault
				tlb := &TLB{}
				if ok := donor.WriteVia(tlb, 0x1000, 8, 0x5a5a, all, &f); !ok {
					t.Fatal(&f)
				}
				if err := as.ShareRange(donor, 0x1000, PageSize); err != nil {
					t.Fatal(err)
				}
			},
			verify: func(t *testing.T, as *AddressSpace, tlb *TLB) {
				var f Fault
				v, ok := as.ReadVia(tlb, 0x1000, 8, all, &f)
				if !ok {
					t.Fatal(&f)
				}
				if v != 0x5a5a {
					t.Fatalf("read %#x through warm TLB, want the donor frame's 0x5a5a", v)
				}
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			as, donor, tlb := tlbFixture(t)
			tc.mutate(t, as, donor)
			tc.verify(t, as, tlb)
		})
	}
}

// TestTLBStaysWarm pins the two reuse properties the fast path depends on:
// repeated access is a hit, and PKRU changes do not flush (WRPKRU does not
// flush the hardware TLB either — the check happens after translation).
func TestTLBStaysWarm(t *testing.T) {
	as, _, tlb := tlbFixture(t)
	var f Fault
	for i := 0; i < 10; i++ {
		if _, ok := as.ReadVia(tlb, 0x1008, 8, mpk.AllowAllValue, &f); !ok {
			t.Fatal(&f)
		}
	}
	if tlb.Hits != 10 || tlb.Misses != 1 {
		t.Fatalf("hits=%d misses=%d, want 10/1", tlb.Hits, tlb.Misses)
	}
	// A protection switch must not invalidate the translation, but must
	// still be enforced on the cached entry.
	deny := mpk.AllowAllValue.WithAccess(1, true, false)
	if ok := as.WriteVia(tlb, 0x1008, 8, 1, deny, &f); ok || f.Kind != FaultPKU {
		t.Fatalf("write under read-only PKRU: ok=%v fault=%v", ok, &f)
	}
	if tlb.Flushes != 0 {
		t.Fatalf("PKRU change flushed the TLB (%d flushes)", tlb.Flushes)
	}
	// Switching address spaces flushes.
	other := NewAddressSpace(NewPhysical())
	if err := other.MapRange(0x1000, PageSize, PermRW, 1); err != nil {
		t.Fatal(err)
	}
	if _, ok := other.ReadVia(tlb, 0x1000, 8, mpk.AllowAllValue, &f); !ok {
		t.Fatal(&f)
	}
	if tlb.Flushes != 1 {
		t.Fatalf("address-space switch must flush, got %d flushes", tlb.Flushes)
	}
}

// TestViaMatchesCheck cross-validates the TLB path against the map-walk
// path over a randomized pattern of accesses and mutations.
func TestViaMatchesCheck(t *testing.T) {
	as := fixture3Pages(t)
	tlb := &TLB{}
	pkrus := []mpk.PKRU{
		mpk.AllowAllValue,
		mpk.AllowAllValue.WithAccess(2, false, false),
		mpk.AllowAllValue.WithAccess(3, true, false),
		mpk.AllowNoneValue,
	}
	addrs := []Addr{0x1000, 0x1ff8, 0x2000, 0x2800, 0x3ff8, 0x5000}
	step := 0
	for round := 0; round < 4; round++ {
		for _, pkru := range pkrus {
			for _, a := range addrs {
				for _, kind := range []mpk.AccessKind{mpk.AccessRead, mpk.AccessWrite, mpk.AccessExec} {
					var f Fault
					frame := as.CheckVia(tlb, a, kind, pkru, &f)
					wantFrame, wantFault := as.Check(a, kind, pkru)
					if (frame == nil) != (wantFault != nil) || frame != wantFrame {
						t.Fatalf("CheckVia(%#x,%v,%v) diverged from Check", uint64(a), kind, pkru)
					}
					if frame == nil && (f.Kind != wantFault.Kind || f.Addr != wantFault.Addr || f.Op != wantFault.Op) {
						t.Fatalf("fault %v != %v", &f, wantFault)
					}
				}
			}
			// Interleave mutations to churn generations.
			switch step++; step % 3 {
			case 0:
				if err := as.Protect(0x2000, PageSize, PermRW); err != nil {
					t.Fatal(err)
				}
			case 1:
				if err := as.SetPKey(0x3000, PageSize, mpk.PKey(step%4+1)); err != nil {
					t.Fatal(err)
				}
			case 2:
				if err := as.Protect(0x2000, PageSize, PermRead); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
}
