// Package mem models the memory subsystem underneath uProcess: physical
// frames, per-process page tables with permission bits and a 4-bit
// protection key per entry, and the dual PTE∧PKRU access check that Intel
// MPK performs (§2.3, §4.1).
//
// Virtual address spaces are sparse page maps. Several address spaces can
// map the same physical frames — this is how the manager's SMAS is shared
// by every kProcess in a scheduling domain (§5.1).
package mem

import (
	"bytes"
	"encoding/binary"
	"fmt"

	"vessel/internal/mpk"
)

// PageSize is the architectural page size.
const PageSize = 4096

// Addr is a simulated virtual address.
type Addr uint64

// PageOf returns the page number containing a.
func (a Addr) PageOf() uint64 { return uint64(a) / PageSize }

// Offset returns the offset of a within its page.
func (a Addr) Offset() uint64 { return uint64(a) % PageSize }

// PageAligned reports whether a is page aligned.
func (a Addr) PageAligned() bool { return uint64(a)%PageSize == 0 }

// Perm is a page-permission bit set.
type Perm uint8

const (
	PermRead Perm = 1 << iota
	PermWrite
	PermExec
)

// PermRW and friends are the common combinations.
const (
	PermNone Perm = 0
	PermRW        = PermRead | PermWrite
	PermRX        = PermRead | PermExec
	PermRWX       = PermRead | PermWrite | PermExec
	// PermXOnly is the executable-only permission the paper gives every
	// text segment: neither readable nor writable (§4.1).
	PermXOnly = PermExec
)

func (p Perm) String() string {
	b := []byte{'-', '-', '-'}
	if p&PermRead != 0 {
		b[0] = 'r'
	}
	if p&PermWrite != 0 {
		b[1] = 'w'
	}
	if p&PermExec != 0 {
		b[2] = 'x'
	}
	return string(b)
}

// Allows reports whether p permits the access kind.
func (p Perm) Allows(kind mpk.AccessKind) bool {
	switch kind {
	case mpk.AccessRead:
		return p&PermRead != 0
	case mpk.AccessWrite:
		return p&PermWrite != 0
	case mpk.AccessExec:
		return p&PermExec != 0
	}
	return false
}

// Frame is a physical page frame.
type Frame struct {
	ID   int
	Data [PageSize]byte
}

// Physical is the machine's physical memory: a growable set of frames.
type Physical struct {
	frames []*Frame
}

// NewPhysical returns an empty physical memory.
func NewPhysical() *Physical { return &Physical{} }

// AllocFrame allocates a zeroed frame.
func (p *Physical) AllocFrame() *Frame {
	f := &Frame{ID: len(p.frames)}
	p.frames = append(p.frames, f)
	return f
}

// AllocFrames allocates n contiguous zeroed frames.
func (p *Physical) AllocFrames(n int) []*Frame {
	out := make([]*Frame, n)
	for i := range out {
		out[i] = p.AllocFrame()
	}
	return out
}

// NumFrames returns the number of allocated frames.
func (p *Physical) NumFrames() int { return len(p.frames) }

// PTE is a page-table entry: frame, permission bits, and protection key.
type PTE struct {
	Frame *Frame
	Perm  Perm
	PKey  mpk.PKey
}

// FaultKind classifies memory faults.
type FaultKind uint8

const (
	FaultNotMapped FaultKind = iota
	FaultPerm                // page permission bits deny the access
	FaultPKU                 // PKRU denies the access (SEGV_PKUERR)
)

func (k FaultKind) String() string {
	switch k {
	case FaultNotMapped:
		return "not-mapped"
	case FaultPerm:
		return "page-perm"
	case FaultPKU:
		return "pkey"
	default:
		return fmt.Sprintf("FaultKind(%d)", uint8(k))
	}
}

// Fault describes a failed memory access. It satisfies error and is what a
// simulated core raises as SIGSEGV.
type Fault struct {
	Addr Addr
	Kind FaultKind
	Op   mpk.AccessKind
}

func (f *Fault) Error() string {
	return fmt.Sprintf("mem: %s fault (%s) at %#x", f.Op, f.Kind, uint64(f.Addr))
}

// AddressSpace is a sparse virtual→physical mapping with per-page
// permissions and protection keys.
type AddressSpace struct {
	pages map[uint64]PTE
	phys  *Physical
	// gen counts translation-affecting mutations (Map, Unmap, Protect,
	// SetPKey, ShareRange). Software TLBs tag their entries with the
	// generation they were filled under, so any stale translation
	// self-invalidates on the next access — the simulated analogue of the
	// TLB shootdown the kernel performs on real hardware. Data writes
	// through frames never bump it, and neither does WRPKRU: PKRU is
	// checked after translation, exactly as MPK leaves the hardware TLB
	// valid across protection switches.
	gen uint64
}

// NewAddressSpace returns an empty address space over the given physical
// memory.
func NewAddressSpace(phys *Physical) *AddressSpace {
	return &AddressSpace{pages: make(map[uint64]PTE), phys: phys}
}

// Map installs a mapping for one page. vaddr must be page aligned.
func (as *AddressSpace) Map(vaddr Addr, frame *Frame, perm Perm, key mpk.PKey) error {
	if !vaddr.PageAligned() {
		return fmt.Errorf("mem: Map at unaligned address %#x", uint64(vaddr))
	}
	if frame == nil {
		return fmt.Errorf("mem: Map with nil frame")
	}
	as.pages[vaddr.PageOf()] = PTE{Frame: frame, Perm: perm, PKey: key}
	as.gen++
	return nil
}

// Generation returns the address space's translation generation. It changes
// on every mutation that can invalidate a cached translation; see TLB.
func (as *AddressSpace) Generation() uint64 { return as.gen }

// MapRange allocates fresh frames and maps length bytes starting at vaddr.
func (as *AddressSpace) MapRange(vaddr Addr, length uint64, perm Perm, key mpk.PKey) error {
	if !vaddr.PageAligned() {
		return fmt.Errorf("mem: MapRange at unaligned address %#x", uint64(vaddr))
	}
	n := int((length + PageSize - 1) / PageSize)
	for i := 0; i < n; i++ {
		if err := as.Map(vaddr+Addr(i*PageSize), as.phys.AllocFrame(), perm, key); err != nil {
			return err
		}
	}
	return nil
}

// ShareRange maps the pages backing [vaddr, vaddr+length) in src into this
// address space at the same virtual addresses — the mechanism by which every
// kProcess in a scheduling domain attaches SMAS (§5.1).
func (as *AddressSpace) ShareRange(src *AddressSpace, vaddr Addr, length uint64) error {
	// Bumped up front: a mid-range failure leaves earlier pages remapped,
	// and those must still invalidate cached translations.
	as.gen++
	n := int((length + PageSize - 1) / PageSize)
	for i := 0; i < n; i++ {
		a := vaddr + Addr(i*PageSize)
		pte, ok := src.pages[a.PageOf()]
		if !ok {
			return fmt.Errorf("mem: ShareRange: source page %#x not mapped", uint64(a))
		}
		as.pages[a.PageOf()] = pte
	}
	return nil
}

// Unmap removes mappings for [vaddr, vaddr+length).
func (as *AddressSpace) Unmap(vaddr Addr, length uint64) {
	n := int((length + PageSize - 1) / PageSize)
	for i := 0; i < n; i++ {
		delete(as.pages, (vaddr + Addr(i*PageSize)).PageOf())
	}
	as.gen++
}

// Protect changes the permission bits of the pages covering
// [vaddr, vaddr+length), mirroring mprotect().
func (as *AddressSpace) Protect(vaddr Addr, length uint64, perm Perm) error {
	as.gen++ // up front: a mid-range failure still mutated earlier pages
	n := int((length + PageSize - 1) / PageSize)
	for i := 0; i < n; i++ {
		a := vaddr + Addr(i*PageSize)
		pte, ok := as.pages[a.PageOf()]
		if !ok {
			return fmt.Errorf("mem: Protect: page %#x not mapped", uint64(a))
		}
		pte.Perm = perm
		as.pages[a.PageOf()] = pte
	}
	return nil
}

// SetPKey tags the pages covering [vaddr, vaddr+length) with a protection
// key, mirroring pkey_mprotect()'s key assignment.
func (as *AddressSpace) SetPKey(vaddr Addr, length uint64, key mpk.PKey) error {
	as.gen++ // up front: a mid-range failure still mutated earlier pages
	n := int((length + PageSize - 1) / PageSize)
	for i := 0; i < n; i++ {
		a := vaddr + Addr(i*PageSize)
		pte, ok := as.pages[a.PageOf()]
		if !ok {
			return fmt.Errorf("mem: SetPKey: page %#x not mapped", uint64(a))
		}
		pte.PKey = key
		as.pages[a.PageOf()] = pte
	}
	return nil
}

// Lookup returns the PTE covering vaddr.
func (as *AddressSpace) Lookup(vaddr Addr) (PTE, bool) {
	pte, ok := as.pages[vaddr.PageOf()]
	return pte, ok
}

// Mapped reports whether vaddr is mapped.
func (as *AddressSpace) Mapped(vaddr Addr) bool {
	_, ok := as.pages[vaddr.PageOf()]
	return ok
}

// Check performs the full architectural access check — PTE permission bits
// AND the PKRU register — and returns the frame on success. This mirrors
// the hardware behaviour the paper relies on: "MPK is supplementary to the
// existing page permission bits and both permissions will be checked during
// memory access" (§4.1).
func (as *AddressSpace) Check(vaddr Addr, kind mpk.AccessKind, pkru mpk.PKRU) (*Frame, *Fault) {
	pte, ok := as.pages[vaddr.PageOf()]
	if !ok {
		return nil, &Fault{Addr: vaddr, Kind: FaultNotMapped, Op: kind}
	}
	if !pte.Perm.Allows(kind) {
		return nil, &Fault{Addr: vaddr, Kind: FaultPerm, Op: kind}
	}
	if !pkru.Check(pte.PKey, kind) {
		return nil, &Fault{Addr: vaddr, Kind: FaultPKU, Op: kind}
	}
	return pte.Frame, nil
}

// maxAccessSize bounds single loads/stores to a machine word.
const maxAccessSize = 8

// Read performs a checked read of size bytes (≤8, must not cross a page
// boundary) at vaddr under the given PKRU.
func (as *AddressSpace) Read(vaddr Addr, size int, pkru mpk.PKRU) (uint64, *Fault) {
	if size <= 0 || size > maxAccessSize || vaddr.Offset()+uint64(size) > PageSize {
		return 0, &Fault{Addr: vaddr, Kind: FaultNotMapped, Op: mpk.AccessRead}
	}
	frame, fault := as.Check(vaddr, mpk.AccessRead, pkru)
	if fault != nil {
		return 0, fault
	}
	return readWord(frame, vaddr.Offset(), size), nil
}

// readWord assembles a little-endian word of size bytes at off, which the
// caller has bounds-checked to be page-local.
func readWord(frame *Frame, off uint64, size int) uint64 {
	if size == 8 {
		return binary.LittleEndian.Uint64(frame.Data[off:])
	}
	var v uint64
	for i := 0; i < size; i++ {
		v |= uint64(frame.Data[off+uint64(i)]) << (8 * i)
	}
	return v
}

// writeWord is readWord's store counterpart.
func writeWord(frame *Frame, off uint64, size int, value uint64) {
	if size == 8 {
		binary.LittleEndian.PutUint64(frame.Data[off:], value)
		return
	}
	for i := 0; i < size; i++ {
		frame.Data[off+uint64(i)] = byte(value >> (8 * i))
	}
}

// Write performs a checked write of size bytes (≤8, page-local) at vaddr.
func (as *AddressSpace) Write(vaddr Addr, size int, value uint64, pkru mpk.PKRU) *Fault {
	if size <= 0 || size > maxAccessSize || vaddr.Offset()+uint64(size) > PageSize {
		return &Fault{Addr: vaddr, Kind: FaultNotMapped, Op: mpk.AccessWrite}
	}
	frame, fault := as.Check(vaddr, mpk.AccessWrite, pkru)
	if fault != nil {
		return fault
	}
	writeWord(frame, vaddr.Offset(), size, value)
	return nil
}

// ReadBytes copies length bytes starting at vaddr into a new slice, applying
// the access check once per page touched (permissions and protection keys
// are page-granular, so one Check covers the whole page run). Used by the
// loader and by privileged runtime code (with an all-access PKRU). A fault
// carries the address of the first byte the copy would have touched on the
// failing page — byte-identical to a per-byte walk.
func (as *AddressSpace) ReadBytes(vaddr Addr, length int, pkru mpk.PKRU) ([]byte, *Fault) {
	out := make([]byte, length)
	if fault := as.ReadBytesInto(vaddr, out, pkru); fault != nil {
		return nil, fault
	}
	return out, nil
}

// ReadBytesInto copies len(out) bytes starting at vaddr into out, with
// the same one-check-per-page batching and fault semantics as ReadBytes
// but no result allocation — the variant for hot callers (the
// syscall-layer buffer path, page-copy loops) that reuse a buffer. The
// non-faulting path performs zero allocations.
func (as *AddressSpace) ReadBytesInto(vaddr Addr, out []byte, pkru mpk.PKRU) *Fault {
	for done := 0; done < len(out); {
		a := vaddr + Addr(done)
		frame, fault := as.Check(a, mpk.AccessRead, pkru)
		if fault != nil {
			return fault
		}
		done += copy(out[done:], frame.Data[a.Offset():])
	}
	return nil
}

// WriteBytes copies data into memory starting at vaddr with one access check
// per page touched. On a fault, every page before the failing one has
// already been written and stays visible — the same partial-write behaviour
// as a byte-at-a-time copy, since checks can only fail at page boundaries.
// No guarantee is made about bytes on or after the failing page.
func (as *AddressSpace) WriteBytes(vaddr Addr, data []byte, pkru mpk.PKRU) *Fault {
	for done := 0; done < len(data); {
		a := vaddr + Addr(done)
		frame, fault := as.Check(a, mpk.AccessWrite, pkru)
		if fault != nil {
			return fault
		}
		done += copy(frame.Data[a.Offset():], data[done:])
	}
	return nil
}

// ReadCString reads a NUL-terminated string of at most max bytes starting at
// vaddr, checking access once per page actually touched: the scan stops at
// the first NUL, and pages beyond it are never checked — exactly where a
// byte-at-a-time reader would have stopped. The terminator is not included;
// max bytes without a NUL returns the full run.
func (as *AddressSpace) ReadCString(vaddr Addr, max int, pkru mpk.PKRU) (string, *Fault) {
	var buf []byte
	for scanned := 0; scanned < max; {
		a := vaddr + Addr(scanned)
		frame, fault := as.Check(a, mpk.AccessRead, pkru)
		if fault != nil {
			return "", fault
		}
		off := int(a.Offset())
		limit := PageSize - off
		if rem := max - scanned; limit > rem {
			limit = rem
		}
		chunk := frame.Data[off : off+limit]
		if i := bytes.IndexByte(chunk, 0); i >= 0 {
			return string(append(buf, chunk[:i]...)), nil
		}
		buf = append(buf, chunk...)
		scanned += limit
	}
	return string(buf), nil
}

// NumPages returns the number of mapped pages.
func (as *AddressSpace) NumPages() int { return len(as.pages) }
