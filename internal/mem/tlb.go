package mem

import (
	"encoding/binary"

	"vessel/internal/mpk"
)

// TLBSize is the number of direct-mapped entries in a software TLB. Must be
// a power of two: entries are indexed by the low bits of the page number.
const TLBSize = 64

// tlbEntry caches one translation. tag is the page number + 1 so the zero
// value is never a hit.
type tlbEntry struct {
	tag   uint64
	frame *Frame
	perm  Perm
	pkey  mpk.PKey
}

// TLB is a small direct-mapped software translation cache from page number
// to (frame, permission bits, protection key) — the per-core structure that
// lets the simulator amortise page-table walks the way hardware does.
//
// Coherence is by generation: the TLB remembers which AddressSpace it was
// filled from and at which Generation. Any translation-affecting mutation
// (Map, Unmap, Protect, SetPKey, ShareRange) bumps the generation, so the
// next access through the TLB flushes it wholesale — the simulated analogue
// of a TLB shootdown. Rebinding to a different AddressSpace (an address-
// space switch) likewise flushes.
//
// The TLB is semantically invisible: only the translation and the page's
// static bits are cached. PKRU is still consulted on every access, after
// translation — mirroring real MPK, where WRPKRU does not flush the
// hardware TLB and protection switches leave cached translations valid.
//
// A TLB is owned by exactly one simulated core and, like the rest of the
// simulation, is not safe for concurrent use.
type TLB struct {
	as   *AddressSpace
	gen  uint64
	ents [TLBSize]tlbEntry

	// Hits, Misses, and Flushes count lookups for benchmarks and tests.
	// They are host-side observability, never part of simulated results.
	Hits, Misses, Flushes uint64
}

// Flush discards every cached translation.
func (t *TLB) Flush() {
	t.ents = [TLBSize]tlbEntry{}
	t.Flushes++
}

// sync flushes and rebinds when the TLB is stale for as.
func (t *TLB) sync(as *AddressSpace) {
	if t.as != as || t.gen != as.gen {
		t.Flush()
		t.as, t.gen = as, as.gen
	}
}

// CheckVia performs the same PTE∧PKRU dual check as Check, but resolves the
// translation through the TLB and reports faults by filling *f (returning
// nil) instead of allocating — keeping the non-faulting hot path free of
// allocations. Only successful translations are cached; the permission and
// PKRU checks run on every access against the cached page bits.
func (as *AddressSpace) CheckVia(t *TLB, vaddr Addr, kind mpk.AccessKind, pkru mpk.PKRU, f *Fault) *Frame {
	t.sync(as)
	page := uint64(vaddr) / PageSize
	e := &t.ents[page&(TLBSize-1)]
	if e.tag != page+1 {
		t.Misses++
		pte, ok := as.pages[page]
		if !ok {
			*f = Fault{Addr: vaddr, Kind: FaultNotMapped, Op: kind}
			return nil
		}
		e.tag, e.frame, e.perm, e.pkey = page+1, pte.Frame, pte.Perm, pte.PKey
	} else {
		t.Hits++
	}
	if !e.perm.Allows(kind) {
		*f = Fault{Addr: vaddr, Kind: FaultPerm, Op: kind}
		return nil
	}
	if !pkru.Check(e.pkey, kind) {
		*f = Fault{Addr: vaddr, Kind: FaultPKU, Op: kind}
		return nil
	}
	return e.frame
}

// ReadVia is Read through a TLB: a checked, page-local load of size bytes
// (≤8) that fills *f and reports false on fault instead of allocating.
func (as *AddressSpace) ReadVia(t *TLB, vaddr Addr, size int, pkru mpk.PKRU, f *Fault) (uint64, bool) {
	if size <= 0 || size > maxAccessSize || vaddr.Offset()+uint64(size) > PageSize {
		*f = Fault{Addr: vaddr, Kind: FaultNotMapped, Op: mpk.AccessRead}
		return 0, false
	}
	frame := as.CheckVia(t, vaddr, mpk.AccessRead, pkru, f)
	if frame == nil {
		return 0, false
	}
	return readWord(frame, vaddr.Offset(), size), true
}

// WriteVia is Write through a TLB; see ReadVia.
func (as *AddressSpace) WriteVia(t *TLB, vaddr Addr, size int, value uint64, pkru mpk.PKRU, f *Fault) bool {
	if size <= 0 || size > maxAccessSize || vaddr.Offset()+uint64(size) > PageSize {
		*f = Fault{Addr: vaddr, Kind: FaultNotMapped, Op: mpk.AccessWrite}
		return false
	}
	frame := as.CheckVia(t, vaddr, mpk.AccessWrite, pkru, f)
	if frame == nil {
		return false
	}
	writeWord(frame, vaddr.Offset(), size, value)
	return true
}

// fill loads the PTE covering page into its TLB slot, reporting false
// and the fault when the page is unmapped — the shared miss path of the
// width-specialized accessors below.
func (t *TLB) fill(as *AddressSpace, page uint64, vaddr Addr, kind mpk.AccessKind, f *Fault) bool {
	t.Misses++
	pte, ok := as.pages[page]
	if !ok {
		*f = Fault{Addr: vaddr, Kind: FaultNotMapped, Op: kind}
		return false
	}
	e := &t.ents[page&(TLBSize-1)]
	e.tag, e.frame, e.perm, e.pkey = page+1, pte.Frame, pte.Perm, pte.PKey
	return true
}

// ReadVia8 is ReadVia specialized to the 8-byte word loads the
// instruction VM issues — the superblock executor's data path. The
// probe, fault kinds, fault ordering, and partial semantics are exactly
// ReadVia(t, vaddr, 8, ...)'s; the specialization only flattens the
// size switches and the AccessKind dispatch out of the hot loop.
func (as *AddressSpace) ReadVia8(t *TLB, vaddr Addr, pkru mpk.PKRU, f *Fault) (uint64, bool) {
	off := vaddr.Offset()
	if off > PageSize-8 {
		*f = Fault{Addr: vaddr, Kind: FaultNotMapped, Op: mpk.AccessRead}
		return 0, false
	}
	if t.as != as || t.gen != as.gen {
		t.Flush()
		t.as, t.gen = as, as.gen
	}
	page := uint64(vaddr) / PageSize
	e := &t.ents[page&(TLBSize-1)]
	if e.tag != page+1 {
		if !t.fill(as, page, vaddr, mpk.AccessRead, f) {
			return 0, false
		}
	} else {
		t.Hits++
	}
	if e.perm&PermRead == 0 {
		*f = Fault{Addr: vaddr, Kind: FaultPerm, Op: mpk.AccessRead}
		return 0, false
	}
	if !pkru.Check(e.pkey, mpk.AccessRead) {
		*f = Fault{Addr: vaddr, Kind: FaultPKU, Op: mpk.AccessRead}
		return 0, false
	}
	return binary.LittleEndian.Uint64(e.frame.Data[off:]), true
}

// WriteVia8 is ReadVia8's store counterpart: WriteVia(t, vaddr, 8, ...)
// with the width and access kind specialized away.
func (as *AddressSpace) WriteVia8(t *TLB, vaddr Addr, value uint64, pkru mpk.PKRU, f *Fault) bool {
	off := vaddr.Offset()
	if off > PageSize-8 {
		*f = Fault{Addr: vaddr, Kind: FaultNotMapped, Op: mpk.AccessWrite}
		return false
	}
	if t.as != as || t.gen != as.gen {
		t.Flush()
		t.as, t.gen = as, as.gen
	}
	page := uint64(vaddr) / PageSize
	e := &t.ents[page&(TLBSize-1)]
	if e.tag != page+1 {
		if !t.fill(as, page, vaddr, mpk.AccessWrite, f) {
			return false
		}
	} else {
		t.Hits++
	}
	if e.perm&PermWrite == 0 {
		*f = Fault{Addr: vaddr, Kind: FaultPerm, Op: mpk.AccessWrite}
		return false
	}
	if !pkru.Check(e.pkey, mpk.AccessWrite) {
		*f = Fault{Addr: vaddr, Kind: FaultPKU, Op: mpk.AccessWrite}
		return false
	}
	binary.LittleEndian.PutUint64(e.frame.Data[off:], value)
	return true
}
