package mem

import (
	"testing"
	"testing/quick"

	"vessel/internal/mpk"
)

func newAS(t *testing.T) *AddressSpace {
	t.Helper()
	return NewAddressSpace(NewPhysical())
}

func TestMapReadWrite(t *testing.T) {
	as := newAS(t)
	if err := as.MapRange(0x1000, 2*PageSize, PermRW, 1); err != nil {
		t.Fatal(err)
	}
	pkru := mpk.AllowAllValue
	if f := as.Write(0x1008, 8, 0xdeadbeefcafe, pkru); f != nil {
		t.Fatal(f)
	}
	v, f := as.Read(0x1008, 8, pkru)
	if f != nil {
		t.Fatal(f)
	}
	if v != 0xdeadbeefcafe {
		t.Fatalf("read %#x", v)
	}
	// Second page independently writable.
	if f := as.Write(0x2000, 4, 0x1234, pkru); f != nil {
		t.Fatal(f)
	}
}

func TestUnmappedFault(t *testing.T) {
	as := newAS(t)
	_, f := as.Read(0x5000, 8, mpk.AllowAllValue)
	if f == nil || f.Kind != FaultNotMapped {
		t.Fatalf("fault = %v", f)
	}
	if f.Error() == "" {
		t.Fatal("fault must format")
	}
}

func TestPagePermFault(t *testing.T) {
	as := newAS(t)
	if err := as.MapRange(0x1000, PageSize, PermRead, 0); err != nil {
		t.Fatal(err)
	}
	if f := as.Write(0x1000, 8, 1, mpk.AllowAllValue); f == nil || f.Kind != FaultPerm {
		t.Fatalf("write to read-only page: fault=%v", f)
	}
	// Exec-only text: reads must fault even with a permissive PKRU.
	if err := as.MapRange(0x2000, PageSize, PermXOnly, 0); err != nil {
		t.Fatal(err)
	}
	if _, f := as.Read(0x2000, 8, mpk.AllowAllValue); f == nil || f.Kind != FaultPerm {
		t.Fatalf("read of exec-only page: fault=%v", f)
	}
	if _, f := as.Check(0x2000, mpk.AccessExec, mpk.AllowNoneValue); f != nil {
		t.Fatalf("exec of exec-only page must pass regardless of PKRU: %v", f)
	}
}

func TestPKUFault(t *testing.T) {
	as := newAS(t)
	if err := as.MapRange(0x1000, PageSize, PermRW, 3); err != nil {
		t.Fatal(err)
	}
	denied := mpk.AllowNoneValue
	if _, f := as.Read(0x1000, 8, denied); f == nil || f.Kind != FaultPKU {
		t.Fatalf("PKU read: fault=%v", f)
	}
	readOnly := mpk.AllowNoneValue.WithAccess(3, true, false)
	if _, f := as.Read(0x1000, 8, readOnly); f != nil {
		t.Fatalf("read with RO key: %v", f)
	}
	if f := as.Write(0x1000, 8, 1, readOnly); f == nil || f.Kind != FaultPKU {
		t.Fatalf("write with RO key: fault=%v", f)
	}
}

func TestBothChecksApply(t *testing.T) {
	// Paper §4.1: page permissions AND MPK are both checked. An
	// exec-only page with the uProcess's own key must still refuse
	// data reads.
	as := newAS(t)
	if err := as.MapRange(0x3000, PageSize, PermXOnly, 2); err != nil {
		t.Fatal(err)
	}
	ownKey := mpk.AllowNoneValue.WithAccess(2, true, true)
	if _, f := as.Read(0x3000, 8, ownKey); f == nil {
		t.Fatal("data read of own exec-only text must fault")
	}
}

func TestProtectAndSetPKey(t *testing.T) {
	as := newAS(t)
	if err := as.MapRange(0x1000, 4*PageSize, PermRW, 1); err != nil {
		t.Fatal(err)
	}
	if err := as.Protect(0x2000, 2*PageSize, PermRead); err != nil {
		t.Fatal(err)
	}
	pkru := mpk.AllowAllValue
	if f := as.Write(0x1000, 8, 1, pkru); f != nil {
		t.Fatal("page 1 should stay writable")
	}
	if f := as.Write(0x2000, 8, 1, pkru); f == nil {
		t.Fatal("page 2 should be read-only now")
	}
	if err := as.SetPKey(0x1000, PageSize, 7); err != nil {
		t.Fatal(err)
	}
	pte, ok := as.Lookup(0x1000)
	if !ok || pte.PKey != 7 {
		t.Fatalf("pkey = %v", pte.PKey)
	}
	if err := as.Protect(0x9000, PageSize, PermRead); err == nil {
		t.Fatal("protect of unmapped range must fail")
	}
	if err := as.SetPKey(0x9000, PageSize, 1); err == nil {
		t.Fatal("SetPKey of unmapped range must fail")
	}
}

func TestShareRange(t *testing.T) {
	phys := NewPhysical()
	manager := NewAddressSpace(phys)
	if err := manager.MapRange(0x10000, 2*PageSize, PermRW, 4); err != nil {
		t.Fatal(err)
	}
	if f := manager.Write(0x10010, 8, 42, mpk.AllowAllValue); f != nil {
		t.Fatal(f)
	}
	kproc := NewAddressSpace(phys)
	if err := kproc.ShareRange(manager, 0x10000, 2*PageSize); err != nil {
		t.Fatal(err)
	}
	v, f := kproc.Read(0x10010, 8, mpk.AllowAllValue)
	if f != nil || v != 42 {
		t.Fatalf("shared read: v=%d f=%v", v, f)
	}
	// Writes through one mapping are visible through the other.
	if f := kproc.Write(0x10010, 8, 99, mpk.AllowAllValue); f != nil {
		t.Fatal(f)
	}
	if v, _ := manager.Read(0x10010, 8, mpk.AllowAllValue); v != 99 {
		t.Fatalf("write not shared: %d", v)
	}
	if err := kproc.ShareRange(manager, 0x50000, PageSize); err == nil {
		t.Fatal("sharing unmapped source must fail")
	}
}

func TestUnmap(t *testing.T) {
	as := newAS(t)
	if err := as.MapRange(0x1000, 2*PageSize, PermRW, 0); err != nil {
		t.Fatal(err)
	}
	as.Unmap(0x1000, PageSize)
	if as.Mapped(0x1000) {
		t.Fatal("page still mapped")
	}
	if !as.Mapped(0x2000) {
		t.Fatal("wrong page unmapped")
	}
}

func TestReadWriteBytes(t *testing.T) {
	as := newAS(t)
	if err := as.MapRange(0x1000, 2*PageSize, PermRW, 0); err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 5000) // crosses a page boundary
	for i := range data {
		data[i] = byte(i)
	}
	if f := as.WriteBytes(0x1000, data, mpk.AllowAllValue); f != nil {
		t.Fatal(f)
	}
	got, f := as.ReadBytes(0x1000, len(data), mpk.AllowAllValue)
	if f != nil {
		t.Fatal(f)
	}
	for i := range data {
		if got[i] != data[i] {
			t.Fatalf("byte %d: %d != %d", i, got[i], data[i])
		}
	}
}

func TestCrossPageWordAccessRejected(t *testing.T) {
	as := newAS(t)
	if err := as.MapRange(0x1000, 2*PageSize, PermRW, 0); err != nil {
		t.Fatal(err)
	}
	if _, f := as.Read(0x1FFC, 8, mpk.AllowAllValue); f == nil {
		t.Fatal("cross-page word read should fault")
	}
	if f := as.Write(0x1FFC, 8, 1, mpk.AllowAllValue); f == nil {
		t.Fatal("cross-page word write should fault")
	}
	if _, f := as.Read(0x1000, 0, mpk.AllowAllValue); f == nil {
		t.Fatal("zero-size read should fault")
	}
}

func TestMapValidation(t *testing.T) {
	as := newAS(t)
	if err := as.Map(0x1001, as.phys.AllocFrame(), PermRW, 0); err == nil {
		t.Fatal("unaligned map must fail")
	}
	if err := as.Map(0x1000, nil, PermRW, 0); err == nil {
		t.Fatal("nil frame must fail")
	}
	if err := as.MapRange(0x1001, PageSize, PermRW, 0); err == nil {
		t.Fatal("unaligned MapRange must fail")
	}
}

func TestPermString(t *testing.T) {
	if PermRW.String() != "rw-" || PermXOnly.String() != "--x" || PermNone.String() != "---" {
		t.Fatalf("perm strings: %s %s %s", PermRW, PermXOnly, PermNone)
	}
}

func TestFaultKindString(t *testing.T) {
	for _, k := range []FaultKind{FaultNotMapped, FaultPerm, FaultPKU, FaultKind(9)} {
		if k.String() == "" {
			t.Fatal("empty fault kind string")
		}
	}
}

func TestRoundTripProperty(t *testing.T) {
	// Property: any word written is read back identically under a
	// permissive PKRU, for any in-page offset and size.
	as := newAS(t)
	if err := as.MapRange(0, 16*PageSize, PermRW, 1); err != nil {
		t.Fatal(err)
	}
	f := func(page uint8, off uint16, sizeRaw uint8, val uint64) bool {
		size := int(sizeRaw%8) + 1
		o := uint64(off) % (PageSize - uint64(size))
		a := Addr(uint64(page%16)*PageSize + o)
		want := val
		if size < 8 {
			want &= (1 << (8 * size)) - 1
		}
		if fl := as.Write(a, size, val, mpk.AllowAllValue); fl != nil {
			return false
		}
		got, fl := as.Read(a, size, mpk.AllowAllValue)
		return fl == nil && got == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIsolationProperty(t *testing.T) {
	// Property: with PKRU granting only key A, no access to a key-B page
	// ever succeeds (the uProcess isolation invariant of §4.1).
	as := newAS(t)
	if err := as.MapRange(0x0000, PageSize, PermRW, 1); err != nil {
		t.Fatal(err)
	}
	if err := as.MapRange(0x1000, PageSize, PermRW, 2); err != nil {
		t.Fatal(err)
	}
	onlyA := mpk.AllowNoneValue.WithAccess(1, true, true)
	f := func(off uint16, write bool, val uint64) bool {
		a := Addr(0x1000 + uint64(off)%(PageSize-8))
		if write {
			return as.Write(a, 8, val, onlyA) != nil
		}
		_, fl := as.Read(a, 8, onlyA)
		return fl != nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
