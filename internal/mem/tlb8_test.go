package mem

import (
	"testing"

	"vessel/internal/mpk"
)

// TestVia8ParityWithVia drives ReadVia8/WriteVia8 — the width-specialized
// accessors the superblock µop interpreter calls — through every fault
// class side by side with ReadVia/WriteVia at size 8, requiring identical
// verdicts, values, and fault records. The specialization must be pure
// mechanism: same probe, same fault kinds, same ordering.
func TestVia8ParityWithVia(t *testing.T) {
	as := NewAddressSpace(NewPhysical())
	if err := as.MapRange(0x1000, PageSize, PermRW, 1); err != nil {
		t.Fatal(err)
	}
	if err := as.MapRange(0x2000, PageSize, PermRead, 2); err != nil {
		t.Fatal(err)
	}
	if err := as.MapRange(0x3000, PageSize, PermXOnly, 0); err != nil {
		t.Fatal(err)
	}
	all := mpk.AllowAllValue
	cases := []struct {
		name  string
		addr  Addr
		pkru  mpk.PKRU
		write bool
	}{
		{"rw-ok-read", 0x1008, all, false},
		{"rw-ok-write", 0x1008, all, true},
		{"unmapped-read", 0x9000, all, false},
		{"unmapped-write", 0x9000, all, true},
		{"page-overrun-read", 0x1000 + PageSize - 4, all, false},
		{"page-overrun-write", 0x1000 + PageSize - 4, all, true},
		{"perm-write-denied", 0x2010, all, true},
		{"perm-read-denied", 0x3010, all, false},
		{"pku-read-denied", 0x1018, all.WithAccess(1, false, false), false},
		{"pku-write-denied", 0x1018, all.WithAccess(1, true, false), true},
	}
	for _, tc := range cases {
		// Fresh TLBs per case so both sides probe cold and warm alike.
		var tg, ts TLB
		for pass := 0; pass < 2; pass++ { // cold then warm
			var fg, fs Fault
			if tc.write {
				okG := as.WriteVia(&tg, tc.addr, 8, 0xDEAD0000+uint64(pass), tc.pkru, &fg)
				okS := as.WriteVia8(&ts, tc.addr, 0xDEAD0000+uint64(pass), tc.pkru, &fs)
				if okG != okS || (!okG && fg != fs) {
					t.Fatalf("%s pass %d: WriteVia (%v, %v) vs WriteVia8 (%v, %v)",
						tc.name, pass, okG, fg, okS, fs)
				}
			} else {
				vG, okG := as.ReadVia(&tg, tc.addr, 8, tc.pkru, &fg)
				vS, okS := as.ReadVia8(&ts, tc.addr, tc.pkru, &fs)
				if okG != okS || vG != vS || (!okG && fg != fs) {
					t.Fatalf("%s pass %d: ReadVia (%#x, %v, %v) vs ReadVia8 (%#x, %v, %v)",
						tc.name, pass, vG, okG, fg, vS, okS, fs)
				}
			}
		}
	}
	// Round trip through mixed accessors: a word stored by WriteVia8 must
	// read back identically through both read paths.
	var tlb TLB
	var f Fault
	if !as.WriteVia8(&tlb, 0x1040, 0x0123456789ABCDEF, all, &f) {
		t.Fatal(&f)
	}
	v8, ok8 := as.ReadVia8(&tlb, 0x1040, all, &f)
	vg, okg := as.ReadVia(&tlb, 0x1040, 8, all, &f)
	if !ok8 || !okg || v8 != 0x0123456789ABCDEF || v8 != vg {
		t.Fatalf("round trip: via8 (%#x, %v), via (%#x, %v)", v8, ok8, vg, okg)
	}
}

// TestReadBytesIntoParity checks the allocation-free bulk read against
// ReadBytes: same bytes, same faults, on a clean span and on a span whose
// middle page is pkey-denied.
func TestReadBytesIntoParity(t *testing.T) {
	as := fixture3Pages(t)
	all := mpk.AllowAllValue
	start := Addr(0x1000 + PageSize/2)
	span := 2*PageSize + 100
	data := make([]byte, span)
	for i := range data {
		data[i] = byte(i * 7)
	}
	if f := as.WriteBytes(start, data, all); f != nil {
		t.Fatal(f)
	}
	want, f := as.ReadBytes(start, span, all)
	if f != nil {
		t.Fatal(f)
	}
	got := make([]byte, span)
	if f := as.ReadBytesInto(start, got, all); f != nil {
		t.Fatal(f)
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("byte %d: ReadBytes %#x, ReadBytesInto %#x", i, want[i], got[i])
		}
	}
	noMid := all.WithAccess(2, false, false)
	_, fWant := as.ReadBytes(start, span, noMid)
	fGot := as.ReadBytesInto(start, got, noMid)
	if fWant == nil || fGot == nil || *fWant != *fGot {
		t.Fatalf("fault parity: ReadBytes %v, ReadBytesInto %v", fWant, fGot)
	}
}

// TestReadBytesIntoNoAlloc pins the satellite perf contract: the
// non-faulting bulk read must not allocate.
func TestReadBytesIntoNoAlloc(t *testing.T) {
	as := fixture3Pages(t)
	buf := make([]byte, PageSize)
	allocs := testing.AllocsPerRun(100, func() {
		if f := as.ReadBytesInto(0x1000, buf, mpk.AllowAllValue); f != nil {
			t.Fatal(f)
		}
	})
	if allocs != 0 {
		t.Fatalf("ReadBytesInto allocates %v/op on the non-faulting path, want 0", allocs)
	}
}
