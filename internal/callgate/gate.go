// Package callgate implements the uProcess call gate of §4.2 (Listing 1):
// the only legal path by which a uProcess enters the userspace privileged
// mode. A gate is a short instruction sequence in the shared executable-only
// text region that
//
//  1. raises PKRU to the runtime's all-access value (WRPKRU),
//  2. saves the caller's stack pointer in CPUID_TO_TASK_MAP and switches to
//     the per-core runtime stack from CPUID_TO_RUNTIME_MAP — so no return
//     address the application can reach is ever used in privileged mode,
//  3. calls the runtime function through the read-only function-pointer
//     vector in the message pipe (never the forgeable PLT),
//  4. restores the (possibly new, after a context switch) task's stack
//     pointer and PKRU from the task map, and
//  5. re-checks PKRU against the task map, looping back if a control-flow
//     hijack landed mid-gate with a forged RAX.
//
// The builder can also produce deliberately weakened gates (no stack
// switch, no recheck) so the attack tests can demonstrate the exploits the
// hardening defeats.
package callgate

import (
	"fmt"

	"vessel/internal/cpu"
	"vessel/internal/mem"
	"vessel/internal/mpk"
	"vessel/internal/smas"
)

// FuncID identifies a runtime function in the message-pipe vector.
type FuncID int

// Well-known runtime function ids used by the uProcess runtime. User
// registrations may use any free id below smas.MaxRuntimeFuncs.
const (
	FnPark     FuncID = 0 // voluntary yield (§4.4)
	FnSchedule FuncID = 1 // Uintr preemption handler body (§4.3)
	FnSyscall  FuncID = 2 // syscall interposition (§5.2.4)
	FnExit     FuncID = 3 // uProcess termination
	FnUser     FuncID = 8 // first id available to tests/apps
)

// Options weaken the gate for attack demonstrations. The zero value is the
// full hardened gate.
type Options struct {
	// NoStackSwitch omits stage 2's switch to the runtime stack,
	// recreating the return-address attack surface (§4.2, third issue).
	NoStackSwitch bool
	// NoPkruRecheck omits stage 4, recreating the control-flow-hijack
	// surface on the PKRU restore (§4.2, ERIM/Hodor's mitigation).
	NoPkruRecheck bool
	// UsePLT routes the runtime call through a writable per-uProcess
	// function pointer instead of the read-only vector, recreating the
	// PLT-overwrite attack (§4.2, second issue). The caller supplies the
	// writable slot address via PLTSlot.
	UsePLT  bool
	PLTSlot mem.Addr
}

// Gate is an installed call gate.
type Gate struct {
	FuncID FuncID
	// Entry is the address application code calls.
	Entry mem.Addr
	// ResetPKRU is the address of the stage-3 WRPKRU restore sequence —
	// exported so the hijack tests can jump straight at it, as the
	// attack does.
	ResetPKRU mem.Addr
	// Stage1WrPkru is the address of the stage-1 WRPKRU — the other
	// hijack target.
	Stage1WrPkru mem.Addr
	// Stage3WrPkru is the address of the stage-3 WRPKRU restore
	// instruction itself (the precise hijack landing point).
	Stage3WrPkru mem.Addr
}

// Runtime owns the function-pointer vector and builds gates over a SMAS.
type Runtime struct {
	S     *smas.SMAS
	gates map[FuncID]*Gate
	names map[FuncID]string
	// OnInvoke, when non-nil, observes every runtime-function body that
	// executes with the privileged PKRU — i.e. every legitimate gate
	// crossing, after stage 1 raised privilege and before the body runs.
	// Direct jumps into runtime text that fail the privilege guard are
	// not reported; they fault instead.
	OnInvoke func(c *cpu.Core, fid FuncID, name string)
}

// NewRuntime returns a gate builder/registry for the domain.
func NewRuntime(s *smas.SMAS) *Runtime {
	return &Runtime{S: s, gates: make(map[FuncID]*Gate), names: make(map[FuncID]string)}
}

// Gate returns the installed gate for fid.
func (rt *Runtime) Gate(fid FuncID) (*Gate, bool) {
	g, ok := rt.gates[fid]
	return g, ok
}

// FuncName returns the registered name for fid.
func (rt *Runtime) FuncName(fid FuncID) string { return rt.names[fid] }

// Register installs a runtime function (a privileged Go callback wrapped as
// runtime text), publishes it in the function-pointer vector, builds the
// hardened gate for it, and returns the gate.
//
// costCycles is the modeled cycle cost of the function body (the Go
// callback runs "for free" otherwise).
func (rt *Runtime) Register(fid FuncID, name string, impl func(c *cpu.Core) *mem.Fault, costCycles int64) (*Gate, error) {
	return rt.RegisterWithOptions(fid, name, impl, costCycles, Options{})
}

// RegisterWithOptions is Register with gate-weakening options for the
// attack suite.
func (rt *Runtime) RegisterWithOptions(fid FuncID, name string, impl func(c *cpu.Core) *mem.Fault, costCycles int64, opts Options) (*Gate, error) {
	if fid < 0 || int(fid) >= smas.MaxRuntimeFuncs {
		return nil, fmt.Errorf("callgate: function id %d out of range", fid)
	}
	if _, dup := rt.gates[fid]; dup {
		return nil, fmt.Errorf("callgate: function id %d already registered", fid)
	}
	// Install the runtime function body: [hook, ret] in the text region.
	// The hook is wrapped with a privilege guard: runtime code reached
	// *without* the gate (a direct jump into the shared executable-only
	// text) still runs with the application's PKRU, so its first access
	// to runtime-keyed data must fault — exactly what real MPK enforces.
	// The Go-level implementation gets its privileged view only when the
	// core's PKRU actually is the runtime value.
	priv := rt.S.RuntimePKRU()
	guarded := func(c *cpu.Core) *mem.Fault {
		if c.PKRU != priv {
			return &mem.Fault{Addr: smas.RuntimeBase, Kind: mem.FaultPKU, Op: mpk.AccessRead}
		}
		if rt.OnInvoke != nil {
			rt.OnInvoke(c, fid, name)
		}
		if impl == nil {
			return nil
		}
		return impl(c)
	}
	body := []cpu.Instr{
		cpu.Hook{Name: name, Fn: guarded, Cost: costCycles},
		cpu.Ret{},
	}
	fnAddr, err := rt.S.InstallText(body, smas.RuntimeKey)
	if err != nil {
		return nil, err
	}
	if err := rt.S.SetFnVec(int(fid), fnAddr); err != nil {
		return nil, err
	}
	g, err := rt.buildGate(fid, opts)
	if err != nil {
		return nil, err
	}
	rt.gates[fid] = g
	rt.names[fid] = name
	return g, nil
}

// buildGate assembles and installs the gate text for fid.
func (rt *Runtime) buildGate(fid FuncID, opts Options) (*Gate, error) {
	s := rt.S
	a := cpu.NewAssembler()
	runtimePKRU := uint64(uint32(s.RuntimePKRU()))

	// Stage 1: enter privileged mode.
	a.Label("entry")
	a.Emit(cpu.MovImm{Dst: cpu.RAX, Imm: runtimePKRU})
	a.Label("stage1_wrpkru")
	a.Emit(cpu.WrPkru{})

	// Stage 2: locate this core's task-map entry (R9) and save RSP.
	emitTaskEntryAddr := func() {
		a.Emit(
			cpu.CpuID{Dst: cpu.R8},
			cpu.MovReg{Dst: cpu.R9, Src: cpu.R8},
			cpu.MulImm{Dst: cpu.R9, Imm: 32},
			cpu.MovImm{Dst: cpu.RCX, Imm: uint64(s.TaskMapEntry(0))},
			cpu.Add{Dst: cpu.R9, Src: cpu.RCX},
		)
	}
	emitTaskEntryAddr()
	a.Emit(cpu.Store{Src: cpu.RSP, Base: cpu.R9, Off: smas.TaskRSPOff})
	if !opts.NoStackSwitch {
		// RCX = &CPUID_TO_RUNTIME_MAP[core]; RSP = its stack top.
		a.Emit(
			cpu.MovReg{Dst: cpu.RCX, Src: cpu.R8},
			cpu.MulImm{Dst: cpu.RCX, Imm: 32},
			cpu.MovImm{Dst: cpu.RBX, Imm: uint64(s.RuntimeMapEntry(0))},
			cpu.Add{Dst: cpu.RCX, Src: cpu.RBX},
			cpu.Load{Dst: cpu.RSP, Base: cpu.RCX, Off: smas.TaskRSPOff},
		)
	}

	// Stage 2b: invoke the runtime function.
	if opts.UsePLT {
		a.Emit(cpu.CallMem{Addr: opts.PLTSlot})
	} else {
		a.Emit(cpu.CallMem{Addr: s.FnVecSlot(int(fid))})
	}

	// Return path: reload the (possibly new) task's RSP.
	emitTaskEntryAddr()
	a.Emit(cpu.Load{Dst: cpu.RSP, Base: cpu.R9, Off: smas.TaskRSPOff})

	// Stage 3: restore the task's PKRU. reset_pkru recomputes the
	// task-map address from CPUID and immediates — it must never trust a
	// register a hijacker could have forged before jumping here.
	a.Label("reset_pkru")
	emitTaskEntryAddr()
	a.Emit(cpu.Load{Dst: cpu.RAX, Base: cpu.R9, Off: smas.TaskPKRUOff})
	a.Label("stage3_wrpkru")
	a.Emit(cpu.WrPkru{})

	if !opts.NoPkruRecheck {
		// Stage 4: verify PKRU matches the task map, again recomputing
		// the entry address from scratch. A hijacker that jumped to
		// stage3_wrpkru with a forged RAX (and any forged R9) fails
		// the comparison and is forced back through reset_pkru, which
		// rewrites the correct value.
		emitTaskEntryAddr()
		a.Emit(cpu.Load{Dst: cpu.RBX, Base: cpu.R9, Off: smas.TaskPKRUOff})
		a.Emit(cpu.RdPkru{})
		a.JneTo(cpu.RAX, cpu.RBX, "reset_pkru")
	}
	a.Emit(cpu.Ret{})

	// The gate's internal jumps are position-dependent, so assemble at
	// the exact base InstallText will choose.
	base := rt.S.NextTextBase()
	code, err := a.Assemble(base)
	if err != nil {
		return nil, err
	}
	got, err := s.InstallText(code, smas.RuntimeKey)
	if err != nil {
		return nil, err
	}
	if got != base {
		return nil, fmt.Errorf("callgate: text base moved (%#x != %#x)", uint64(got), uint64(base))
	}
	return &Gate{
		FuncID:       fid,
		Entry:        a.AddrOf("entry", base),
		ResetPKRU:    a.AddrOf("reset_pkru", base),
		Stage1WrPkru: a.AddrOf("stage1_wrpkru", base),
		Stage3WrPkru: a.AddrOf("stage3_wrpkru", base),
	}, nil
}
