package callgate

import (
	"testing"

	"vessel/internal/cpu"
	"vessel/internal/mem"
	"vessel/internal/sim"
	"vessel/internal/smas"
)

// TestGateFuzzNoPrivilegeEscape throws thousands of randomly generated
// attacker programs at the hardened gate. Each program is built from the
// primitives an attacker controls — arbitrary register values (including
// forged PKRU words in RAX), arbitrary jumps into any instruction of the
// gate and the runtime function body, stack pivots within its own region,
// and legal gate calls — and the invariant checked is the §4.2 security
// goal: the attacker never observes the runtime-region secret, and
// whenever control sits in attacker code the PKRU grants no access to the
// runtime key.
func TestGateFuzzNoPrivilegeEscape(t *testing.T) {
	const trials = 400
	rng := sim.NewRNG(0xF00D)
	for trial := 0; trial < trials; trial++ {
		env, gate := newEnv(t, Options{})
		runFuzzTrial(t, env, gate, rng, trial)
	}
}

func runFuzzTrial(t *testing.T, env *testEnv, gate *Gate, rng *sim.RNG, trial int) {
	t.Helper()
	// Interesting jump targets: every instruction of the gate region and
	// a few absolute addresses.
	targets := []mem.Addr{
		gate.Entry,
		gate.Stage1WrPkru,
		gate.Stage3WrPkru,
		gate.ResetPKRU,
		gate.Entry + cpu.InstrSize,
		gate.Stage3WrPkru + cpu.InstrSize,
		gate.Stage3WrPkru - cpu.InstrSize,
		gate.ResetPKRU + 3*cpu.InstrSize,
	}
	// Interesting RAX values: privileged PKRU words.
	raxVals := []uint64{
		0,          // allow-all
		0x55555555, // allow-none
		uint64(uint32(env.s.RuntimePKRU())),
		uint64(uint32(env.s.AppPKRU(env.region.Key))),
		rng.Uint64(),
	}
	a := cpu.NewAssembler()
	n := 3 + rng.IntN(12)
	for i := 0; i < n; i++ {
		switch rng.IntN(8) {
		case 0:
			a.Emit(cpu.MovImm{Dst: cpu.RAX, Imm: raxVals[rng.IntN(len(raxVals))]})
		case 1:
			a.Emit(cpu.MovImm{Dst: cpu.Reg(rng.IntN(int(cpu.NumRegs))), Imm: rng.Uint64() % (1 << 32)})
		case 2:
			a.Emit(cpu.Jmp{Target: targets[rng.IntN(len(targets))]})
		case 3:
			// Stack pivot within the attacker's own region.
			off := uint64(rng.IntN(int(env.region.Size-64))) &^ 7
			a.Emit(cpu.MovImm{Dst: cpu.RSP, Imm: uint64(env.region.Base) + off + 64})
		case 4:
			a.Emit(cpu.Push{Src: cpu.Reg(rng.IntN(int(cpu.NumRegs)))})
		case 5:
			a.Emit(cpu.Call{Target: gate.Entry}) // legal call interleaved
		case 6:
			// Plant a value in own memory (e.g. fake return addresses).
			off := uint64(rng.IntN(int(env.region.Size-16))) &^ 7
			a.Emit(cpu.MovImm{Dst: cpu.RCX, Imm: uint64(env.region.Base) + off})
			a.Emit(cpu.Store{Src: cpu.RAX, Base: cpu.RCX})
		case 7:
			a.Emit(cpu.MovImm{Dst: cpu.R9, Imm: rng.Uint64()}) // forge R9
		}
	}
	a.Emit(cpu.Halt{})
	env.installApp(t, a)

	core := env.core
	gateLo := gate.Entry
	gateHi := gate.ResetPKRU + 16*cpu.InstrSize
	for step := 0; step < 600; step++ {
		if !core.Step() {
			break
		}
		// Invariant: privileged PKRU only while executing gate or
		// runtime text (the fn body lives below the gate in the text
		// region). Any privileged PKRU with PC in the attacker's own
		// text is an escape.
		if core.PKRU.CanRead(smas.RuntimeKey) {
			inRuntimeText := core.PC < gateLo+0x10000 // text region is far below app heap
			if !inRuntimeText || core.PC > gateHi && core.PC >= env.region.Base {
				t.Fatalf("trial %d: privileged PKRU at PC %#x", trial, uint64(core.PC))
			}
		}
		// Invariant: the secret never reaches a register.
		for r := cpu.Reg(0); r < cpu.NumRegs; r++ {
			if core.Regs[r] == secretValue {
				t.Fatalf("trial %d: secret leaked into %v at step %d (PC %#x)",
					trial, r, step, uint64(core.PC))
			}
		}
	}
	// Terminal state: either halted/faulted, or still looping — in all
	// cases no privilege while outside gate text.
	if core.PKRU.CanRead(smas.RuntimeKey) && core.PC >= env.region.Base {
		t.Fatalf("trial %d: terminal privileged PKRU at PC %#x", trial, uint64(core.PC))
	}
}

// TestRuntimeBodyDirectJumpFaults verifies the hook privilege guard: an
// application that jumps straight at the runtime function body (skipping
// the gate, so still holding its own PKRU) faults with a protection-key
// violation — exactly what real MPK does when runtime code touches
// runtime-keyed data without privilege.
func TestRuntimeBodyDirectJumpFaults(t *testing.T) {
	env, _ := newEnv(t, Options{})
	// The function body was installed immediately before the gate; its
	// address is in the vector slot, readable by apps.
	fnAddr, f := env.s.AS.Read(env.s.FnVecSlot(int(FnUser)), 8, env.s.AppPKRU(env.region.Key))
	if f != nil {
		t.Fatal(f)
	}
	a := cpu.NewAssembler()
	a.Emit(cpu.Jmp{Target: mem.Addr(fnAddr)})
	env.installApp(t, a)
	env.core.Run(20)
	if env.core.Fault == nil || env.core.Fault.Kind != mem.FaultPKU {
		t.Fatalf("direct runtime-body jump: fault=%v, want PKU", env.core.Fault)
	}
	if env.fnRuns != 0 {
		t.Fatal("runtime body executed its privileged work without privilege")
	}
}
