package callgate

import (
	"testing"

	"vessel/internal/cpu"
	"vessel/internal/mem"
	"vessel/internal/mpk"
	"vessel/internal/smas"
)

// testEnv wires a domain with one app region, a registered runtime
// function, and a core ready to run app code.
type testEnv struct {
	s      *smas.SMAS
	rt     *Runtime
	core   *cpu.Core
	region *smas.Region
	// secretAddr is a runtime-region word holding a "secret" the app
	// must never read.
	secretAddr mem.Addr
	// fnRuns counts executions of the registered runtime function;
	// fnPKRU and fnRSP record the state it observed.
	fnRuns int
	fnPKRU mpk.PKRU
	fnRSP  uint64
}

const secretValue = 0x5ec7e7

func newEnv(t *testing.T, opts Options) (*testEnv, *Gate) {
	t.Helper()
	m := cpu.NewMachine(2, cpu.Default())
	s, err := smas.New(m, 2)
	if err != nil {
		t.Fatal(err)
	}
	env := &testEnv{s: s, rt: NewRuntime(s)}

	env.secretAddr = s.RuntimeHeapBase()
	if f := s.AS.Write(env.secretAddr, 8, secretValue, s.RuntimePKRU()); f != nil {
		t.Fatal(f)
	}

	region, err := s.AllocRegion(4 * mem.PageSize)
	if err != nil {
		t.Fatal(err)
	}
	env.region = region

	gate, err := env.rt.RegisterWithOptions(FnUser, "probe", func(c *cpu.Core) *mem.Fault {
		env.fnRuns++
		env.fnPKRU = c.PKRU
		env.fnRSP = c.Regs[cpu.RSP]
		return nil
	}, 100, opts)
	if err != nil {
		t.Fatal(err)
	}

	core := m.Core(0)
	core.AS = s.AS
	core.PKRU = s.AppPKRU(region.Key)
	core.Regs[cpu.RSP] = uint64(region.StackTop)
	env.core = core

	// Runtime bookkeeping the manager normally performs: per-core
	// runtime stack and this core's task entry.
	if err := s.SetRuntimeStack(0, s.RuntimeStackTop(0)); err != nil {
		t.Fatal(err)
	}
	if err := s.SetTask(0, region.StackTop, s.AppPKRU(region.Key), 1); err != nil {
		t.Fatal(err)
	}
	return env, gate
}

// installApp installs app text (exec-only, app key) and points the core at
// it.
func (e *testEnv) installApp(t *testing.T, a *cpu.Assembler) mem.Addr {
	t.Helper()
	base := e.s.NextTextBase()
	code, err := a.Assemble(base)
	if err != nil {
		t.Fatal(err)
	}
	got, err := e.s.InstallText(code, e.region.Key)
	if err != nil {
		t.Fatal(err)
	}
	if got != base {
		t.Fatal("text base mismatch")
	}
	e.core.PC = base
	return base
}

func TestLegalGateCall(t *testing.T) {
	env, gate := newEnv(t, Options{})
	a := cpu.NewAssembler()
	a.Emit(cpu.MovImm{Dst: cpu.RBX, Imm: 1})
	a.Emit(cpu.Call{Target: gate.Entry})
	a.Emit(cpu.MovImm{Dst: cpu.RDX, Imm: 2}) // runs after gate returns
	a.Emit(cpu.Halt{})
	env.installApp(t, a)

	appPKRU := env.core.PKRU
	env.core.Run(200)
	if env.core.Fault != nil {
		t.Fatalf("fault: %v", env.core.Fault)
	}
	if env.fnRuns != 1 {
		t.Fatalf("runtime fn ran %d times", env.fnRuns)
	}
	// The runtime function observed privileged PKRU and the runtime
	// stack, not the app stack.
	if env.fnPKRU != env.s.RuntimePKRU() {
		t.Fatalf("fn saw PKRU %v", env.fnPKRU)
	}
	rtTop := uint64(env.s.RuntimeStackTop(0))
	if env.fnRSP > rtTop || env.fnRSP < rtTop-4096 {
		t.Fatalf("fn ran on stack %#x, want runtime stack near %#x", env.fnRSP, rtTop)
	}
	// Control returned to the app with its own PKRU and stack restored.
	if env.core.PKRU != appPKRU {
		t.Fatalf("PKRU after return = %v, want app's", env.core.PKRU)
	}
	if env.core.Regs[cpu.RDX] != 2 {
		t.Fatal("did not resume after gate")
	}
	if env.core.Regs[cpu.RSP] != uint64(env.region.StackTop) {
		t.Fatalf("stack not restored: %#x", env.core.Regs[cpu.RSP])
	}
}

func TestGateRoundTripCostSubMicrosecond(t *testing.T) {
	// Table 1's premise: a gate round trip is pure userspace function
	// calls — hundreds of cycles, far below the kernel's microseconds.
	env, gate := newEnv(t, Options{})
	a := cpu.NewAssembler()
	a.Emit(cpu.Call{Target: gate.Entry}, cpu.Halt{})
	env.installApp(t, a)
	env.core.Run(200)
	if env.core.Fault != nil {
		t.Fatal(env.core.Fault)
	}
	ns := env.s.Machine.NsFor(env.core.Cycles)
	if ns <= 0 || ns > 500 {
		t.Fatalf("gate round trip = %.1f ns, want sub-µs", ns)
	}
}

func TestAppCannotReadRuntimeDirectly(t *testing.T) {
	env, _ := newEnv(t, Options{})
	a := cpu.NewAssembler()
	a.Emit(cpu.MovImm{Dst: cpu.RCX, Imm: uint64(env.secretAddr)})
	a.Emit(cpu.Load{Dst: cpu.RAX, Base: cpu.RCX})
	a.Emit(cpu.Halt{})
	env.installApp(t, a)
	env.core.Run(10)
	if env.core.Fault == nil || env.core.Fault.Kind != mem.FaultPKU {
		t.Fatalf("direct runtime read: fault=%v, want PKU", env.core.Fault)
	}
	if env.core.Regs[cpu.RAX] == secretValue {
		t.Fatal("secret leaked")
	}
}

func TestHijackStage3DefeatedByRecheck(t *testing.T) {
	// §4.2 control-flow hijack: forge RAX = all-access and jump straight
	// at the stage-3 WRPKRU. The recheck must force the PKRU back to the
	// app's value before control returns.
	env, gate := newEnv(t, Options{})
	a := cpu.NewAssembler()
	// Push a return target so the gate's final ret lands back in app
	// code at "landing".
	a.LeaTo(cpu.RBX, "landing")
	a.Emit(cpu.Push{Src: cpu.RBX})
	// The saved-RSP slot in the task map still holds StackTop from
	// setup, so the gate's restore will pop our pushed landing address
	// if RSP matches; store current RSP to the map is privileged, so
	// the attacker instead relies on the stale value. Make our RSP
	// match the stale saved value minus the push.
	a.Emit(cpu.MovImm{Dst: cpu.RAX, Imm: uint64(uint32(mpk.AllowAllValue))})
	a.Emit(cpu.MovImm{Dst: cpu.R9, Imm: 0xdeadbeef}) // forged, must not be trusted
	a.Emit(cpu.Jmp{Target: gate.ResetPKRU + 0})      // jump into the restore path
	a.Label("landing")
	// If we got here with privileges, this read succeeds; otherwise it
	// faults with PKU.
	a.Emit(cpu.MovImm{Dst: cpu.RCX, Imm: uint64(env.secretAddr)})
	a.Emit(cpu.Load{Dst: cpu.RAX, Base: cpu.RCX})
	a.Emit(cpu.Halt{})
	env.installApp(t, a)

	// Adjust the saved RSP so the gate's epilogue pops our landing
	// address (simulating the attacker aligning stacks).
	env.core.Run(400)
	if env.core.PKRU.CanRead(smas.RuntimeKey) {
		t.Fatalf("hijack retained privileged PKRU: %v", env.core.PKRU)
	}
	if env.core.Regs[cpu.RAX] == secretValue {
		t.Fatal("hijack read the secret")
	}
}

func TestHijackStage3SucceedsWithoutRecheck(t *testing.T) {
	// The same attack against a gate built without stage 4 must succeed
	// — demonstrating why the recheck exists.
	env, gate := newEnv(t, Options{NoPkruRecheck: true})
	a := cpu.NewAssembler()
	a.LeaTo(cpu.RBX, "landing")
	a.Emit(cpu.Push{Src: cpu.RBX})
	// Point the task map's saved RSP at our current stack so the ret
	// pops "landing": the stale saved RSP is StackTop; after one push
	// our RSP is StackTop-8. The gate reloads RSP from the map
	// (StackTop)... so instead plant the landing address AT StackTop-8
	// and leave saved RSP alone? The pop reads [StackTop] which is
	// unmapped. To keep the demonstration honest and simple, the
	// attacker pre-writes the landing address where the gate will pop:
	// the word at [savedRSP] == [StackTop] is out of region, so use the
	// hijack WITHOUT relying on ret: jump at the wrpkru and fall
	// through; with no recheck the next instruction is ret. We make
	// [StackTop-8] hold landing and update our RSP via the map's value
	// minus 8 — but the app cannot write the map. So: call the gate
	// legally once so the saved RSP equals our RSP at entry, then
	// hijack.
	a.Emit(cpu.Halt{})
	a.Label("landing")
	a.Emit(cpu.MovImm{Dst: cpu.RCX, Imm: uint64(env.secretAddr)})
	a.Emit(cpu.Load{Dst: cpu.RDX, Base: cpu.RCX})
	a.Emit(cpu.Halt{})
	base := env.installApp(t, a)

	// Honest setup for the demonstration: the saved RSP in the task map
	// points at the top of a stack whose next word the attacker
	// controls. Arrange it directly (an attacker reaches this state by
	// timing a legal gate call).
	landing := a.AddrOf("landing", base)
	stackSlot := env.region.StackTop - 16
	if f := env.s.AS.Write(stackSlot, 8, uint64(landing), env.s.RuntimePKRU()); f != nil {
		t.Fatal(f)
	}
	if err := env.s.SetTask(0, stackSlot, env.s.AppPKRU(env.region.Key), 1); err != nil {
		t.Fatal(err)
	}
	// Hijack: forged RAX, attacker-controlled stack whose top holds the
	// landing address, and a jump at the naked WRPKRU (skipping
	// reset_pkru's own reload).
	env.core.Regs[cpu.RAX] = uint64(uint32(mpk.AllowAllValue))
	env.core.Regs[cpu.RSP] = uint64(stackSlot)
	env.core.PC = gate.Stage3WrPkru
	env.core.Run(100)
	if env.core.Fault != nil {
		t.Fatalf("fault: %v", env.core.Fault)
	}
	if env.core.Regs[cpu.RDX] != secretValue {
		t.Fatal("weakened gate should have been exploitable (demonstration failed)")
	}
}

func TestReturnAddressAttackDefeatedByStackSwitch(t *testing.T) {
	// §4.2 third issue: a sibling thread rewrites the return address the
	// runtime call pushed. With the hardened gate that address lives on
	// the runtime stack, which app-PKRU writes cannot reach.
	env, _ := newEnv(t, Options{})
	rtStackSlot := env.s.RuntimeStackTop(0) - 8
	appPKRU := env.s.AppPKRU(env.region.Key)
	if f := env.s.AS.Write(rtStackSlot, 8, 0xbad, appPKRU); f == nil {
		t.Fatal("app wrote the runtime stack")
	} else if f.Kind != mem.FaultPKU {
		t.Fatalf("fault kind = %v", f.Kind)
	}
}

func TestReturnAddressAttackSucceedsWithoutStackSwitch(t *testing.T) {
	// Against a gate without the stack switch, the runtime function's
	// return address sits on the app stack; a sibling thread rewrites it
	// and gains privileged execution.
	env, gate := newEnv(t, Options{NoStackSwitch: true})
	a := cpu.NewAssembler()
	a.Emit(cpu.Call{Target: gate.Entry})
	a.Emit(cpu.Halt{}) // normal return point
	a.Label("evil")
	// Runs in privileged mode if the attack worked: read the secret.
	a.Emit(cpu.MovImm{Dst: cpu.RCX, Imm: uint64(env.secretAddr)})
	a.Emit(cpu.Load{Dst: cpu.RDX, Base: cpu.RCX})
	a.Emit(cpu.Halt{})
	base := env.installApp(t, a)
	evil := a.AddrOf("evil", base)

	// Step until the runtime call has pushed its return address onto the
	// app stack (RSP dropped by 16: gate-entry call + runtime call).
	start := env.core.Regs[cpu.RSP]
	for i := 0; i < 100; i++ {
		if !env.core.Step() {
			t.Fatal("halted early")
		}
		if env.core.Regs[cpu.RSP] == start-16 {
			break
		}
	}
	if env.core.Regs[cpu.RSP] != start-16 {
		t.Fatal("never reached the vulnerable window")
	}
	// Sibling thread (app PKRU) rewrites the return slot on the app
	// stack — allowed, it is the app's own memory.
	slot := mem.Addr(env.core.Regs[cpu.RSP])
	if f := env.s.AS.Write(slot, 8, uint64(evil), env.s.AppPKRU(env.region.Key)); f != nil {
		t.Fatalf("sibling write failed: %v", f)
	}
	env.core.Run(200)
	if env.core.Regs[cpu.RDX] != secretValue {
		t.Fatal("weakened gate should leak the secret (demonstration failed)")
	}
}

func TestPLTAttack(t *testing.T) {
	// §4.2 second issue: routing the privileged call through a writable
	// PLT slot lets the app run arbitrary code in privileged mode. The
	// hardened gate uses the read-only vector instead.
	m := cpu.NewMachine(1, cpu.Default())
	s, err := smas.New(m, 1)
	if err != nil {
		t.Fatal(err)
	}
	rt := NewRuntime(s)
	region, err := s.AllocRegion(4 * mem.PageSize)
	if err != nil {
		t.Fatal(err)
	}
	secret := s.RuntimeHeapBase() + 64
	if f := s.AS.Write(secret, 8, secretValue, s.RuntimePKRU()); f != nil {
		t.Fatal(f)
	}
	// Evil function the app controls, installed as app text.
	evilAsm := cpu.NewAssembler()
	evilAsm.Emit(cpu.MovImm{Dst: cpu.RCX, Imm: uint64(secret)})
	evilAsm.Emit(cpu.Load{Dst: cpu.RDX, Base: cpu.RCX})
	evilAsm.Emit(cpu.Ret{})
	evilBase := s.NextTextBase()
	evilCode, err := evilAsm.Assemble(evilBase)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.InstallText(evilCode, region.Key); err != nil {
		t.Fatal(err)
	}
	// PLT slot in the app's own (writable) region.
	pltSlot := region.Base + 128
	gate, err := rt.RegisterWithOptions(FnUser, "victim", func(c *cpu.Core) *mem.Fault {
		return nil
	}, 10, Options{UsePLT: true, PLTSlot: pltSlot})
	if err != nil {
		t.Fatal(err)
	}
	// The app overwrites its PLT slot — allowed, it is app memory.
	appPKRU := s.AppPKRU(region.Key)
	if f := s.AS.Write(pltSlot, 8, uint64(evilBase), appPKRU); f != nil {
		t.Fatal(f)
	}
	// App calls the gate.
	appAsm := cpu.NewAssembler()
	appAsm.Emit(cpu.Call{Target: gate.Entry}, cpu.Halt{})
	appBase := s.NextTextBase()
	appCode, err := appAsm.Assemble(appBase)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.InstallText(appCode, region.Key); err != nil {
		t.Fatal(err)
	}
	core := m.Core(0)
	core.AS = s.AS
	core.PKRU = appPKRU
	core.PC = appBase
	core.Regs[cpu.RSP] = uint64(region.StackTop)
	if err := s.SetRuntimeStack(0, s.RuntimeStackTop(0)); err != nil {
		t.Fatal(err)
	}
	if err := s.SetTask(0, region.StackTop, appPKRU, 1); err != nil {
		t.Fatal(err)
	}
	core.Run(300)
	if core.Regs[cpu.RDX] != secretValue {
		t.Fatal("PLT attack demonstration failed against the weakened gate")
	}
	// Against the hardened design, the same overwrite attempt on the
	// read-only vector slot faults.
	if f := s.AS.Write(s.FnVecSlot(int(FnUser)), 8, uint64(evilBase), appPKRU); f == nil {
		t.Fatal("app overwrote the function vector")
	}
}

func TestRegisterValidation(t *testing.T) {
	env, _ := newEnv(t, Options{})
	if _, err := env.rt.Register(-1, "x", nil, 0); err == nil {
		t.Fatal("negative fid accepted")
	}
	if _, err := env.rt.Register(FuncID(smas.MaxRuntimeFuncs), "x", nil, 0); err == nil {
		t.Fatal("out-of-range fid accepted")
	}
	if _, err := env.rt.Register(FnUser, "dup", nil, 0); err == nil {
		t.Fatal("duplicate fid accepted")
	}
	if g, ok := env.rt.Gate(FnUser); !ok || g == nil {
		t.Fatal("gate lookup failed")
	}
	if env.rt.FuncName(FnUser) != "probe" {
		t.Fatal("func name lost")
	}
	if _, ok := env.rt.Gate(FnPark); ok {
		t.Fatal("unregistered gate found")
	}
}
