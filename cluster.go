package vessel

import (
	"fmt"
)

// Cluster manages multiple scheduling domains, following §4.1: one domain
// supports at most 13 uProcesses (16 protection keys minus key 0, the
// runtime key and the message-pipe key), so "multiple scheduling domains
// can be used when the number of uProcesses exceeds this limit". Each
// domain owns its own SMAS and cores; the cluster places new uProcesses
// into the first domain with a free key.
type Cluster struct {
	managers []*Manager
	// placement remembers which domain hosts each name.
	placement map[string]int
	perDomain []int
	// maxPerDomain is the cluster-side per-domain launch budget:
	// MaxUProcsPerDomain for hardware-keyed domains, higher (or
	// effectively unbounded) when the domains virtualize their keys.
	maxPerDomain int
}

// MaxUProcsPerDomain mirrors the architectural key budget.
const MaxUProcsPerDomain = 13

// NewCluster boots n scheduling domains with the given cores each.
func NewCluster(domains, coresPerDomain int, costs *CostModel) (*Cluster, error) {
	if domains <= 0 {
		return nil, fmt.Errorf("vessel: cluster needs at least one domain")
	}
	c := &Cluster{
		placement:    make(map[string]int),
		perDomain:    make([]int, domains),
		maxPerDomain: MaxUProcsPerDomain,
	}
	for i := 0; i < domains; i++ {
		m, err := NewManager(coresPerDomain, costs)
		if err != nil {
			return nil, err
		}
		c.managers = append(c.managers, m)
	}
	return c, nil
}

// NewDenseCluster boots n scheduling domains with virtualized protection
// keys: each domain multiplexes unbounded virtual keys onto the hardware
// slots (DESIGN.md §14), so per-domain capacity is maxPerDomain rather
// than the architectural 13. maxPerDomain ≤ 0 means no cluster-side cap —
// the domain's own (enormous) virtual headroom governs.
func NewDenseCluster(domains, coresPerDomain int, costs *CostModel, maxPerDomain int) (*Cluster, error) {
	if domains <= 0 {
		return nil, fmt.Errorf("vessel: cluster needs at least one domain")
	}
	if maxPerDomain <= 0 {
		maxPerDomain = int(^uint(0) >> 1) // effectively uncapped
	}
	c := &Cluster{
		placement:    make(map[string]int),
		perDomain:    make([]int, domains),
		maxPerDomain: maxPerDomain,
	}
	for i := 0; i < domains; i++ {
		m, err := NewManagerVirtual(coresPerDomain, costs)
		if err != nil {
			return nil, err
		}
		c.managers = append(c.managers, m)
	}
	return c, nil
}

// Domains returns the number of domains.
func (c *Cluster) Domains() int { return len(c.managers) }

// Capacity returns how many more uProcesses the cluster can host. Each
// domain contributes the smaller of its cluster-side budget and the
// protection keys actually free in its SMAS — the two can disagree when
// uProcesses were launched directly on a domain's manager, or when
// destroyed regions still await reaping.
func (c *Cluster) Capacity() int {
	total := 0
	for i := range c.managers {
		if free := c.domainFree(i); free > 0 {
			total += free
		}
	}
	return total
}

// domainFree is domain i's placeable headroom: the cluster's own count
// clamped by the domain's free protection keys.
func (c *Cluster) domainFree(i int) int {
	free := c.maxPerDomain - c.perDomain[i]
	if avail := c.managers[i].KeysAvailable(); avail < free {
		free = avail
	}
	return free
}

// Manager returns domain i's manager (to build programs against its gates).
func (c *Cluster) Manager(i int) *Manager { return c.managers[i] }

// DomainOf returns which domain hosts a launched uProcess.
func (c *Cluster) DomainOf(name string) (int, bool) {
	d, ok := c.placement[name]
	return d, ok
}

// Launch places a uProcess into the first domain with a free key. The
// build function receives that domain's manager, because programs are
// assembled against a specific domain's call gates.
func (c *Cluster) Launch(name string, build func(*Manager) (*Program, error), core int) (*UProc, error) {
	if _, dup := c.placement[name]; dup {
		return nil, fmt.Errorf("vessel: uProcess %q already exists in the cluster", name)
	}
	var lastErr error
	for i, m := range c.managers {
		if c.domainFree(i) <= 0 {
			continue
		}
		if m.CoreFenced(core) {
			// The target core was withdrawn by the self-healing layer in
			// this domain; another domain may still be healthy there.
			lastErr = fmt.Errorf("vessel: domain %d: core %d is fenced", i, core)
			continue
		}
		prog, err := build(m)
		if err != nil {
			// A build error is the caller's bug, not a capacity signal:
			// fail the launch with no bookkeeping recorded anywhere.
			return nil, err
		}
		u, err := m.Launch(name, prog, core)
		if err != nil {
			// The domain refused — e.g. its keys were consumed by
			// uProcesses launched directly on its manager, or the name
			// collides there. perDomain/placement stay untouched for the
			// failed attempt; try the next domain.
			lastErr = err
			continue
		}
		c.perDomain[i]++
		c.placement[name] = i
		return u, nil
	}
	if lastErr != nil {
		return nil, fmt.Errorf("vessel: no domain accepted uProcess %q: %w", name, lastErr)
	}
	return nil, fmt.Errorf("vessel: cluster full (%d domains × %d uProcesses)",
		len(c.managers), c.maxPerDomain)
}

// Destroy removes a uProcess and frees its key slot. Termination is lazy
// (§5.1), so the domain is stepped briefly to let its cores process the
// kill command before the region and key are reclaimed.
func (c *Cluster) Destroy(name string) error {
	i, ok := c.placement[name]
	if !ok {
		return fmt.Errorf("vessel: no uProcess %q in the cluster", name)
	}
	m := c.managers[i]
	if err := m.Destroy(name); err != nil {
		return err
	}
	// The kill command is in flight: from here the uProcess is gone from
	// the cluster's point of view, so release the slot before reaping —
	// a reap error must not leave the name permanently stuck in
	// placement (the manager no longer knows it, so a retry could never
	// succeed). Capacity stays honest either way because domainFree
	// clamps on the SMAS's actual free keys, which an unreaped zombie
	// still holds.
	delete(c.placement, name)
	c.perDomain[i]--
	// Drain to event quiescence instead of a fixed per-core step budget:
	// the old hardcoded Step(core, 2000) sweep under-ran long-gated
	// programs (the kill had not landed, Reap reclaimed nothing) and
	// over-ran idle ones. DrainZombies stops exactly when the termination
	// has landed — or when nothing runs and no events are pending.
	if _, err := m.DrainZombies(0); err != nil {
		return err
	}
	if _, err := m.Reap(); err != nil {
		return err
	}
	return nil
}

// Start begins execution on one core of every occupied domain. Occupancy
// is the manager's own count (launched plus unreaped uProcesses), not the
// cluster's launch bookkeeping: a domain populated directly through its
// manager — or still draining zombies — must be stepped even though
// perDomain says zero, and a domain whose uProcesses were all destroyed
// through the manager must not be.
func (c *Cluster) Start(core int) error {
	for _, m := range c.managers {
		if m.Occupancy() == 0 {
			continue
		}
		if err := m.Start(core); err != nil {
			return err
		}
	}
	return nil
}

// Step runs up to n instructions on the given core of every occupied
// domain (occupancy per the manager, as in Start).
func (c *Cluster) Step(core, n int) {
	for _, m := range c.managers {
		if m.Occupancy() > 0 {
			m.Step(core, n)
		}
	}
}
