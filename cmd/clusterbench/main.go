// Command clusterbench gates the two-level cluster scheduler (DESIGN.md
// §16). It runs a core-auction scenario — half the domains heavy, half
// light, launched in waves so demand shifts while the policy rebalances —
// once per registered cluster policy, and holds three hard gates per cell:
//
//   - conformance: CheckClusterSched replays the full op history against
//     an independent ledger (no double grants, owner-only revokes,
//     conservation, delivery accounting, revoke-before-regrant order);
//   - actuation: every delivered upcall actuated within -actuationbudget
//     of its commit (virtual time);
//   - determinism: the same scenario run twice produces byte-identical
//     canonical reports.
//
// Two more scenarios exercise the policy layer itself: a mid-run hot swap
// (fairshare → uslatency) must commit exactly one swap and keep
// scheduling, and an injected cluster-policy panic must fail over to the
// static failsafe within -mttrbudget. The summary lands in
// BENCH_cluster.json for CI.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"vessel"
	"vessel/internal/conformance"
	"vessel/internal/harness/cliflags"
)

var (
	domains      = flag.Int("domains", 4, "scheduling domains competing for the pool")
	cores        = flag.Int("cores", 32, "shared core pool size")
	coresPerNode = flag.Int("corespernode", 8, "NUMA node granularity of the executor caches")
	waves        = flag.Int("waves", 3, "launch waves (demand shifts between waves)")
	heavy        = flag.Int("heavy", 12, "uProcesses per heavy domain per wave")
	light        = flag.Int("light", 2, "uProcesses per light domain per wave")
	rounds       = flag.Int("rounds", 30, "scheduling rounds after the last wave")
	actBudget    = flag.Int64("actuationbudget", int64(50*vessel.Microsecond), "max commit→actuation latency per upcall, virtual ns")
	mttrBudget   = flag.Int64("mttrbudget", int64(100*vessel.Microsecond), "max policy-panic→failsafe-swap latency, virtual ns")
	benchOut     = flag.String("out", "BENCH_cluster.json", "write the benchmark summary JSON here (empty disables)")
)

func parkLoop(m *vessel.Manager) (*vessel.Program, error) {
	return m.NewProgram("loop").Forever(func(b *vessel.ProgramBuilder) {
		b.Compute(500).Park()
	}).Build()
}

// auction builds and runs one core-auction scenario: heavy domains (the
// lower half) launch -heavy uProcesses per wave, light domains -light,
// with scheduling rounds between waves so grants chase the demand.
func auction(policy string, faults *vessel.FaultPlan, run func(s *vessel.ScheduledCluster) error) (*vessel.ScheduledCluster, error) {
	s, err := vessel.NewScheduledCluster(vessel.SchedClusterConfig{
		Domains:      *domains,
		Cores:        *cores,
		CoresPerNode: *coresPerNode,
		Policy:       policy,
		Quantum:      1000,
		Faults:       faults,
	})
	if err != nil {
		return nil, err
	}
	for w := 0; w < *waves; w++ {
		for d := 0; d < s.Domains(); d++ {
			n := *light
			if d < s.Domains()/2 {
				n = *heavy
			}
			for i := 0; i < n; i++ {
				name := fmt.Sprintf("w%d-d%d-%d", w, d, i)
				if _, err := s.Launch(d, name, parkLoop); err != nil {
					return nil, fmt.Errorf("launch %s: %w", name, err)
				}
			}
		}
		if err := s.Run(6); err != nil {
			return nil, err
		}
	}
	if err := run(s); err != nil {
		return nil, err
	}
	return s, nil
}

func steady(s *vessel.ScheduledCluster) error { return s.Run(*rounds) }

// drainAndSteady runs half the rounds, destroys every uProcess in domain
// 0 so the now-idle domain yields its cores back to the pool (exercising
// the revoke/rehome path), and runs the rest.
func drainAndSteady(s *vessel.ScheduledCluster) error {
	if err := s.Run(*rounds / 2); err != nil {
		return err
	}
	for w := 0; w < *waves; w++ {
		for i := 0; i < *heavy; i++ {
			if err := s.Destroy(fmt.Sprintf("w%d-d0-%d", w, i)); err != nil {
				return fmt.Errorf("destroy w%d-d0-%d: %w", w, i, err)
			}
		}
	}
	return s.Run(*rounds - *rounds/2)
}

type policyCell struct {
	Policy         string `json:"policy"`
	Grants         int    `json:"grants"`
	Revokes        int    `json:"revokes"`
	Delivered      int    `json:"delivered"`
	ActuationP99Ns int64  `json:"actuation_p99_ns"`
	ActuationMaxNs int64  `json:"actuation_max_ns"`
	ActuationOK    bool   `json:"actuation_ok"`
	DeterminismOK  bool   `json:"determinism_ok"`
	Violations     int    `json:"violations"`
}

type clusterBench struct {
	Bench             string       `json:"bench"`
	Domains           int          `json:"domains"`
	Cores             int          `json:"cores"`
	CoresPerNode      int          `json:"cores_per_node"`
	Waves             int          `json:"waves"`
	UProcs            int          `json:"uprocs"`
	Rounds            int          `json:"rounds"`
	ActuationBudgetNs int64        `json:"actuation_budget_ns"`
	Policies          []policyCell `json:"policies"`
	HotSwapOK         bool         `json:"hot_swap_ok"`
	FailsafeMTTRNs    int64        `json:"failsafe_mttr_ns"`
	MTTRBudgetNs      int64        `json:"mttr_budget_ns"`
	FailsafeOK        bool         `json:"failsafe_ok"`
	Pass              bool         `json:"pass"`
}

func main() {
	flag.Parse()
	heavyDomains := *domains / 2
	uprocs := *waves * (heavyDomains**heavy + (*domains-heavyDomains)**light)
	fmt.Printf("clusterbench: core auction — %d domains (%d heavy) on a %d-core pool, %d waves, %d uProcesses\n\n",
		*domains, heavyDomains, *cores, *waves, uprocs)

	bench := clusterBench{
		Bench:             "cluster-sched",
		Domains:           *domains,
		Cores:             *cores,
		CoresPerNode:      *coresPerNode,
		Waves:             *waves,
		UProcs:            uprocs,
		Rounds:            *rounds,
		ActuationBudgetNs: *actBudget,
		MTTRBudgetNs:      *mttrBudget,
	}
	failed := false

	// Per-policy cells: conformance + actuation + double-run determinism.
	for _, policy := range vessel.ClusterPolicyNames() {
		s1, err := auction(policy, nil, drainAndSteady)
		if err != nil {
			cliflags.Fail("clusterbench", fmt.Errorf("%s: %w", policy, err))
		}
		s2, err := auction(policy, nil, drainAndSteady)
		if err != nil {
			cliflags.Fail("clusterbench", fmt.Errorf("%s rerun: %w", policy, err))
		}
		rep := s1.Report()
		cell := policyCell{
			Policy:         policy,
			Grants:         rep.Grants,
			Revokes:        rep.Revokes,
			Delivered:      rep.Delivered,
			ActuationP99Ns: rep.Actuation.P99,
			ActuationMaxNs: rep.Actuation.Max,
			ActuationOK:    rep.ActuationOK(vessel.Duration(*actBudget)),
			DeterminismOK:  bytes.Equal(rep.Canonical(), s2.Report().Canonical()),
		}
		vs := conformance.CheckClusterSched("clusterbench/"+policy, rep)
		cell.Violations = len(vs)
		status := "ok"
		if !cell.ActuationOK {
			status, failed = "ACTUATION-OVER-BUDGET", true
		}
		if !cell.DeterminismOK {
			status, failed = "NONDETERMINISTIC", true
		}
		if cell.Violations > 0 {
			status, failed = "VIOLATIONS", true
		}
		fmt.Printf("  %-10s grants=%-4d revokes=%-4d delivered=%-4d actuation p99=%dns max=%dns  %s\n",
			policy, cell.Grants, cell.Revokes, cell.Delivered,
			cell.ActuationP99Ns, cell.ActuationMaxNs, status)
		for _, v := range vs {
			fmt.Printf("    %s\n", v)
		}
		bench.Policies = append(bench.Policies, cell)
	}

	// Hot swap: fairshare → uslatency mid-run; exactly one swap, and the
	// swapped-in policy keeps committing moves.
	swapped, err := auction("fairshare", nil, func(s *vessel.ScheduledCluster) error {
		if err := s.Run(*rounds / 2); err != nil {
			return err
		}
		if err := s.SwapPolicy("uslatency", "operator upgrade"); err != nil {
			return err
		}
		// Shift demand after the swap: the last (light) domain turns
		// heavy, so the swapped-in policy must commit fresh grants.
		for i := 0; i < *heavy; i++ {
			name := fmt.Sprintf("postswap-%d", i)
			if _, err := s.Launch(s.Domains()-1, name, parkLoop); err != nil {
				return fmt.Errorf("launch %s: %w", name, err)
			}
		}
		return s.Run(*rounds / 2)
	})
	if err != nil {
		cliflags.Fail("clusterbench", fmt.Errorf("hot swap: %w", err))
	}
	swapRep := swapped.Report()
	postSwapOps := 0
	if len(swapRep.Swaps) == 1 {
		for _, op := range swapRep.Ops {
			if op.At >= swapRep.Swaps[0].At {
				postSwapOps++
			}
		}
	}
	bench.HotSwapOK = swapped.PolicyName() == "failsafe(uslatency)" &&
		len(swapRep.Swaps) == 1 && postSwapOps > 0 &&
		len(conformance.CheckClusterSched("clusterbench/hotswap", swapRep)) == 0
	fmt.Printf("\nhot swap: policy=%s swaps=%d post-swap-ops=%d ok=%v\n",
		swapped.PolicyName(), len(swapRep.Swaps), postSwapOps, bench.HotSwapOK)
	if !bench.HotSwapOK {
		failed = true
	}

	// Policy-crash chaos: an injected panic inside the active policy must
	// fail over to the static failsafe within the MTTR budget.
	faultAt := vessel.Time(2 * vessel.Microsecond)
	crashed, err := auction("fairshare", &vessel.FaultPlan{
		Seed:   7,
		Faults: []vessel.InjectedFault{{Kind: vessel.FaultClusterPolicyPanic, At: faultAt}},
	}, steady)
	if err != nil {
		cliflags.Fail("clusterbench", fmt.Errorf("policy crash: %w", err))
	}
	crashRep := crashed.Report()
	bench.FailsafeOK = crashed.PolicyName() == "failsafe[static]" &&
		len(crashRep.Swaps) >= 1 &&
		len(conformance.CheckClusterSched("clusterbench/failsafe", crashRep)) == 0
	if bench.FailsafeOK {
		bench.FailsafeMTTRNs = int64(crashRep.Swaps[0].At) - int64(faultAt)
		if bench.FailsafeMTTRNs > *mttrBudget {
			fmt.Printf("\nfailsafe: MTTR %dns exceeds budget %dns\n", bench.FailsafeMTTRNs, *mttrBudget)
			bench.FailsafeOK = false
		}
	}
	fmt.Printf("failsafe: policy=%s swaps=%d mttr=%dns (budget %dns) ok=%v\n",
		crashed.PolicyName(), len(crashRep.Swaps), bench.FailsafeMTTRNs, *mttrBudget, bench.FailsafeOK)
	if !bench.FailsafeOK {
		failed = true
	}

	bench.Pass = !failed
	fmt.Printf("\nclusterbench: pass=%v\n", bench.Pass)

	if *benchOut != "" {
		data, err := json.MarshalIndent(bench, "", "  ")
		if err != nil {
			cliflags.Fail("clusterbench", err)
		}
		if err := os.WriteFile(*benchOut, append(data, '\n'), 0o644); err != nil {
			cliflags.Fail("clusterbench", err)
		}
		fmt.Printf("summary written to %s\n", *benchOut)
	}
	if failed {
		os.Exit(1)
	}
}
