// Command attackbench runs the §4.2 call-gate attack suite against both
// the hardened uProcess gate and deliberately weakened variants, printing a
// verdict per scenario. Every attack must FAIL against the hardened gate
// and SUCCEED against the variant missing the corresponding defence.
package main

import (
	"fmt"
	"os"

	"vessel/internal/callgate"
	"vessel/internal/cpu"
	"vessel/internal/mem"
	"vessel/internal/mpk"
	"vessel/internal/smas"
)

const secret = 0x5ec7e7

// scenario is one attack run: returns true if the attacker obtained the
// runtime-region secret or retained a privileged PKRU.
type scenario struct {
	name    string
	defence string
	opts    callgate.Options
	attack  func(env *env) bool
	// wantBreach: whether the attack is expected to succeed against
	// this gate configuration.
	wantBreach bool
}

type env struct {
	s      *smas.SMAS
	rt     *callgate.Runtime
	core   *cpu.Core
	region *smas.Region
	gate   *callgate.Gate
	secret mem.Addr
}

func newEnv(opts callgate.Options) (*env, error) {
	m := cpu.NewMachine(1, cpu.Default())
	s, err := smas.New(m, 1)
	if err != nil {
		return nil, err
	}
	e := &env{s: s, rt: callgate.NewRuntime(s)}
	e.secret = s.RuntimeHeapBase()
	if f := s.AS.Write(e.secret, 8, secret, s.RuntimePKRU()); f != nil {
		return nil, f
	}
	e.region, err = s.AllocRegion(4 * mem.PageSize)
	if err != nil {
		return nil, err
	}
	if opts.UsePLT && opts.PLTSlot == 0 {
		opts.PLTSlot = e.region.Base + 128
	}
	e.gate, err = e.rt.RegisterWithOptions(callgate.FnUser, "victim",
		func(c *cpu.Core) *mem.Fault { return nil }, 50, opts)
	if err != nil {
		return nil, err
	}
	e.core = m.Core(0)
	e.core.AS = s.AS
	e.core.PKRU = s.AppPKRU(e.region.Key)
	e.core.Regs[cpu.RSP] = uint64(e.region.StackTop)
	if err := s.SetRuntimeStack(0, s.RuntimeStackTop(0)); err != nil {
		return nil, err
	}
	if err := s.SetTask(0, e.region.StackTop, s.AppPKRU(e.region.Key), 1); err != nil {
		return nil, err
	}
	return e, nil
}

func (e *env) install(a *cpu.Assembler) (mem.Addr, error) {
	base := e.s.NextTextBase()
	code, err := a.Assemble(base)
	if err != nil {
		return 0, err
	}
	if _, err := e.s.InstallText(code, e.region.Key); err != nil {
		return 0, err
	}
	return base, nil
}

// hijackStage3 forges RAX=allow-all, plants a landing address on an
// attacker stack, and jumps at the gate's stage-3 WRPKRU.
func hijackStage3(e *env) bool {
	a := cpu.NewAssembler()
	a.Label("landing")
	a.Emit(cpu.MovImm{Dst: cpu.RCX, Imm: uint64(e.secret)})
	a.Emit(cpu.Load{Dst: cpu.RDX, Base: cpu.RCX})
	a.Emit(cpu.Halt{})
	base, err := e.install(a)
	if err != nil {
		return false
	}
	slot := e.region.StackTop - 16
	if f := e.s.AS.Write(slot, 8, uint64(base), e.s.AppPKRU(e.region.Key)); f != nil {
		return false
	}
	e.core.Regs[cpu.RAX] = uint64(uint32(mpk.AllowAllValue))
	e.core.Regs[cpu.RSP] = uint64(slot)
	e.core.PC = e.gate.Stage3WrPkru
	e.core.Run(300)
	return e.core.Regs[cpu.RDX] == secret
}

// retOverwrite exploits a gate without the runtime-stack switch: a sibling
// thread rewrites the runtime call's return slot on the app stack.
func retOverwrite(e *env) bool {
	a := cpu.NewAssembler()
	a.Emit(cpu.Call{Target: e.gate.Entry})
	a.Emit(cpu.Halt{})
	a.Label("evil")
	a.Emit(cpu.MovImm{Dst: cpu.RCX, Imm: uint64(e.secret)})
	a.Emit(cpu.Load{Dst: cpu.RDX, Base: cpu.RCX})
	a.Emit(cpu.Halt{})
	base, err := e.install(a)
	if err != nil {
		return false
	}
	evil := base + 2*cpu.InstrSize
	e.core.PC = base
	start := e.core.Regs[cpu.RSP]
	for i := 0; i < 100; i++ {
		if !e.core.Step() {
			break
		}
		if e.core.Regs[cpu.RSP] == start-16 {
			// Vulnerable window: the runtime call's return address
			// is reachable (on the app stack iff no stack switch).
			slot := mem.Addr(e.core.Regs[cpu.RSP])
			e.s.AS.Write(slot, 8, uint64(evil), e.s.AppPKRU(e.region.Key))
			break
		}
	}
	e.core.Run(300)
	return e.core.Regs[cpu.RDX] == secret
}

// pltOverwrite redirects the gate's writable PLT slot at attacker code.
func pltOverwrite(e *env) bool {
	evilAsm := cpu.NewAssembler()
	evilAsm.Emit(cpu.MovImm{Dst: cpu.RCX, Imm: uint64(e.secret)})
	evilAsm.Emit(cpu.Load{Dst: cpu.RDX, Base: cpu.RCX})
	evilAsm.Emit(cpu.Ret{})
	evilBase, err := e.install(evilAsm)
	if err != nil {
		return false
	}
	slot := e.region.Base + 128
	if f := e.s.AS.Write(slot, 8, uint64(evilBase), e.s.AppPKRU(e.region.Key)); f != nil {
		// Hardened configuration routes through the read-only vector;
		// emulate the attacker trying the vector instead.
		if f2 := e.s.AS.Write(e.s.FnVecSlot(int(callgate.FnUser)), 8, uint64(evilBase),
			e.s.AppPKRU(e.region.Key)); f2 != nil {
			return false
		}
	}
	appAsm := cpu.NewAssembler()
	appAsm.Emit(cpu.Call{Target: e.gate.Entry})
	appAsm.Emit(cpu.Halt{})
	appBase, err := e.install(appAsm)
	if err != nil {
		return false
	}
	e.core.PC = appBase
	e.core.Run(300)
	return e.core.Regs[cpu.RDX] == secret
}

// directRead simply loads the runtime secret from app code.
func directRead(e *env) bool {
	a := cpu.NewAssembler()
	a.Emit(cpu.MovImm{Dst: cpu.RCX, Imm: uint64(e.secret)})
	a.Emit(cpu.Load{Dst: cpu.RDX, Base: cpu.RCX})
	a.Emit(cpu.Halt{})
	base, err := e.install(a)
	if err != nil {
		return false
	}
	e.core.PC = base
	e.core.Run(50)
	return e.core.Regs[cpu.RDX] == secret
}

func main() {
	scenarios := []scenario{
		{"direct runtime read", "MPK region keys", callgate.Options{}, directRead, false},
		{"stage-3 WRPKRU hijack vs hardened gate", "PKRU recheck (stage 4)", callgate.Options{}, hijackStage3, false},
		{"stage-3 WRPKRU hijack vs gate w/o recheck", "(removed)", callgate.Options{NoPkruRecheck: true}, hijackStage3, true},
		{"return-address overwrite vs hardened gate", "runtime-stack switch", callgate.Options{}, retOverwrite, false},
		{"return-address overwrite vs gate w/o stack switch", "(removed)", callgate.Options{NoStackSwitch: true}, retOverwrite, true},
		{"PLT overwrite vs hardened gate", "read-only fn vector", callgate.Options{}, pltOverwrite, false},
		{"PLT overwrite vs gate w/ writable PLT", "(removed)", callgate.Options{UsePLT: true}, pltOverwrite, true},
	}
	fmt.Println("uProcess call-gate attack suite (§4.2)")
	fmt.Println()
	failures := 0
	for _, sc := range scenarios {
		e, err := newEnv(sc.opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "attackbench: %s: setup: %v\n", sc.name, err)
			os.Exit(1)
		}
		breached := sc.attack(e)
		verdict := "DEFENDED"
		if breached {
			verdict = "BREACHED"
		}
		status := "ok"
		if breached != sc.wantBreach {
			status = "UNEXPECTED"
			failures++
		}
		fmt.Printf("%-52s defence: %-26s → %-9s [%s]\n", sc.name, sc.defence, verdict, status)
	}
	fmt.Println()
	if failures > 0 {
		fmt.Printf("%d scenario(s) deviated from the expected outcome\n", failures)
		os.Exit(1)
	}
	fmt.Println("all scenarios behaved as the paper's threat model predicts")
}
