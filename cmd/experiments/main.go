// Command experiments regenerates the paper's evaluation tables and
// figures on the simulated substrate and prints them as text tables.
//
// Usage:
//
//	experiments [-quick] [-seed N] [-run all|fig1|fig2|fig3|fig7|fig9mc|fig9silo|fig10|table1|fig11|fig12|fig13a|fig13b]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"vessel/internal/experiments"
	"vessel/internal/obs"
)

func main() {
	quick := flag.Bool("quick", false, "shrink durations and sweep density")
	seed := flag.Uint64("seed", 42, "simulation seed")
	run := flag.String("run", "all", "which experiment(s) to run (comma-separated)")
	asJSON := flag.Bool("json", false, "emit machine-readable JSON instead of tables")
	traceOut := flag.String("trace", "", "write the observability span timeline to this file (convert with traceconv)")
	obsOut := flag.String("obs", "", "write the observability bench report (profile + metrics) to this JSON file")
	flag.Parse()

	results := map[string]any{}
	emit := func(name string, v fmt.Stringer) {
		if *asJSON {
			results[name] = v
			return
		}
		fmt.Println(v)
	}
	defer func() {
		if *asJSON {
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			if err := enc.Encode(results); err != nil {
				fmt.Fprintln(os.Stderr, "experiments:", err)
				os.Exit(1)
			}
		}
	}()

	o := experiments.Options{Seed: *seed, Quick: *quick}
	if *traceOut != "" || *obsOut != "" {
		o.Obs = obs.New(0)
	}
	want := map[string]bool{}
	for _, name := range strings.Split(*run, ",") {
		want[strings.TrimSpace(strings.ToLower(name))] = true
	}
	all := want["all"]
	sel := func(name string) bool { return all || want[name] }
	fail := func(name string, err error) {
		fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", name, err)
		os.Exit(1)
	}

	if sel("fig1") {
		f, err := experiments.Figure1(o)
		if err != nil {
			fail("fig1", err)
		}
		emit("fig1", f)
	}
	if sel("fig2") {
		f, err := experiments.Figure2(o)
		if err != nil {
			fail("fig2", err)
		}
		emit("fig2", f)
	}
	if sel("fig3") {
		emit("fig3", experiments.Figure3())
	}
	if sel("fig7") {
		f, err := experiments.Figure7(o)
		if err != nil {
			fail("fig7", err)
		}
		emit("fig7", f)
	}
	if sel("fig9mc") {
		f, err := experiments.Figure9(o, "memcached")
		if err != nil {
			fail("fig9mc", err)
		}
		emit("fig9mc", f)
	}
	if sel("fig9silo") {
		f, err := experiments.Figure9(o, "silo")
		if err != nil {
			fail("fig9silo", err)
		}
		emit("fig9silo", f)
	}
	if sel("fig10") {
		f, err := experiments.Figure10(o)
		if err != nil {
			fail("fig10", err)
		}
		emit("fig10", f)
	}
	if sel("table1") {
		t, err := experiments.RunTable1(o, 0)
		if err != nil {
			fail("table1", err)
		}
		emit("table1", t)
	}
	if sel("fig11") {
		f, err := experiments.Figure11(o)
		if err != nil {
			fail("fig11", err)
		}
		emit("fig11", f)
	}
	if sel("fig12") {
		f, err := experiments.Figure12(o)
		if err != nil {
			fail("fig12", err)
		}
		emit("fig12", f)
	}
	if sel("fig13a") {
		f, err := experiments.Figure13a(o)
		if err != nil {
			fail("fig13a", err)
		}
		emit("fig13a", f)
	}
	if sel("fig13b") {
		f, err := experiments.Figure13b(o)
		if err != nil {
			fail("fig13b", err)
		}
		emit("fig13b", f)
	}
	if sel("sens") {
		f, err := experiments.RunSensitivity(o)
		if err != nil {
			fail("sens", err)
		}
		emit("sens", f)
	}

	if *traceOut != "" {
		if err := writeTo(*traceOut, o.Obs.WriteText); err != nil {
			fail("trace", err)
		}
		fmt.Fprintf(os.Stderr, "experiments: span timeline written to %s (%d spans)\n",
			*traceOut, o.Obs.SpanCount())
	}
	if *obsOut != "" {
		if err := writeTo(*obsOut, o.Obs.WriteBenchJSON); err != nil {
			fail("obs", err)
		}
		fmt.Fprintf(os.Stderr, "experiments: observability report written to %s\n", *obsOut)
	}
}

func writeTo(path string, write func(w io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
