// Command experiments regenerates the paper's evaluation tables and
// figures on the simulated substrate and prints them as text tables.
//
// Usage:
//
//	experiments [-quick] [-seed N] [-parallel N] [-cache dir] [-out file]
//	            [-run all|fig1|fig2|fig3|fig7|fig9mc|fig9silo|fig10|table1|fig11|fig12|fig13a|fig13b|sens]
//
// Independent simulation runs execute on a worker pool (-parallel, which
// never changes output bytes, only wall-clock time) and can be memoized
// in a content-addressed cache (-cache). The -benchharness mode times a
// quick fig9 sweep sequentially and in parallel, checks the outputs are
// byte-identical, and writes the comparison to a JSON file.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"
	"time"

	"vessel/internal/experiments"
	"vessel/internal/harness"
	"vessel/internal/harness/cliflags"
	"vessel/internal/obs"
)

func main() {
	quick := cliflags.Quick()
	seed := cliflags.Seed(42)
	parallel := cliflags.Parallel()
	cacheDir := cliflags.CacheDir()
	outPath := cliflags.Out()
	run := flag.String("run", "all", "which experiment(s) to run (comma-separated)")
	asJSON := flag.Bool("json", false, "emit machine-readable JSON instead of tables")
	traceOut := flag.String("trace", "", "write the observability span timeline to this file (convert with traceconv)")
	obsOut := flag.String("obs", "", "write the observability bench report (profile + metrics) to this JSON file")
	benchHarness := flag.String("benchharness", "", "time fig9mc -quick at -parallel 1 vs -parallel N, verify byte equality, write the comparison to this JSON file, and exit")
	flag.Parse()

	if *benchHarness != "" {
		os.Exit(runBenchHarness(*seed, *parallel, *benchHarness))
	}

	exec, err := cliflags.Exec(*parallel, *cacheDir)
	if err != nil {
		os.Exit(cliflags.UsageErr("experiments", err))
	}
	out, closeOut, err := cliflags.OutWriter(*outPath)
	if err != nil {
		os.Exit(cliflags.UsageErr("experiments", err))
	}

	results := map[string]any{}
	emit := func(name string, v fmt.Stringer) {
		if *asJSON {
			results[name] = v
			return
		}
		fmt.Fprintln(out, v)
	}
	defer func() {
		if *asJSON {
			enc := json.NewEncoder(out)
			enc.SetIndent("", "  ")
			if err := enc.Encode(results); err != nil {
				fmt.Fprintln(os.Stderr, "experiments:", err)
				os.Exit(cliflags.ExitFailure)
			}
		}
		if err := closeOut(); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(cliflags.ExitFailure)
		}
	}()

	o := experiments.Options{Seed: *seed, Quick: *quick, Exec: exec}
	if *traceOut != "" || *obsOut != "" {
		// Tracing accumulates spans in one shared observer: runs must
		// stay sequential and uncached (Options.exec enforces this).
		o.Obs = obs.New(0)
	}
	want := map[string]bool{}
	for _, name := range strings.Split(*run, ",") {
		want[strings.TrimSpace(strings.ToLower(name))] = true
	}
	all := want["all"]
	sel := func(name string) bool { return all || want[name] }
	fail := func(name string, err error) {
		closeOut()
		cliflags.Fail("experiments: "+name, err)
	}

	if sel("fig1") {
		f, err := experiments.Figure1(o)
		if err != nil {
			fail("fig1", err)
		}
		emit("fig1", f)
	}
	if sel("fig2") {
		f, err := experiments.Figure2(o)
		if err != nil {
			fail("fig2", err)
		}
		emit("fig2", f)
	}
	if sel("fig3") {
		emit("fig3", experiments.Figure3())
	}
	if sel("fig7") {
		f, err := experiments.Figure7(o)
		if err != nil {
			fail("fig7", err)
		}
		emit("fig7", f)
	}
	if sel("fig9mc") {
		f, err := experiments.Figure9(o, "memcached")
		if err != nil {
			fail("fig9mc", err)
		}
		emit("fig9mc", f)
	}
	if sel("fig9silo") {
		f, err := experiments.Figure9(o, "silo")
		if err != nil {
			fail("fig9silo", err)
		}
		emit("fig9silo", f)
	}
	if sel("fig10") {
		f, err := experiments.Figure10(o)
		if err != nil {
			fail("fig10", err)
		}
		emit("fig10", f)
	}
	if sel("table1") {
		t, err := experiments.RunTable1(o, 0)
		if err != nil {
			fail("table1", err)
		}
		emit("table1", t)
	}
	if sel("fig11") {
		f, err := experiments.Figure11(o)
		if err != nil {
			fail("fig11", err)
		}
		emit("fig11", f)
	}
	if sel("fig12") {
		f, err := experiments.Figure12(o)
		if err != nil {
			fail("fig12", err)
		}
		emit("fig12", f)
	}
	if sel("fig13a") {
		f, err := experiments.Figure13a(o)
		if err != nil {
			fail("fig13a", err)
		}
		emit("fig13a", f)
	}
	if sel("fig13b") {
		f, err := experiments.Figure13b(o)
		if err != nil {
			fail("fig13b", err)
		}
		emit("fig13b", f)
	}
	if sel("sens") {
		f, err := experiments.RunSensitivity(o)
		if err != nil {
			fail("sens", err)
		}
		emit("sens", f)
	}

	if *cacheDir != "" {
		hits, misses, puts := exec.Cache.Stats()
		fmt.Fprintf(os.Stderr, "experiments: cache %s: %d hits, %d misses, %d puts\n",
			*cacheDir, hits, misses, puts)
	}
	if *traceOut != "" {
		if err := writeTo(*traceOut, o.Obs.WriteText); err != nil {
			fail("trace", err)
		}
		fmt.Fprintf(os.Stderr, "experiments: span timeline written to %s (%d spans)\n",
			*traceOut, o.Obs.SpanCount())
	}
	if *obsOut != "" {
		if err := writeTo(*obsOut, o.Obs.WriteBenchJSON); err != nil {
			fail("obs", err)
		}
		fmt.Fprintf(os.Stderr, "experiments: observability report written to %s\n", *obsOut)
	}
}

// harnessBench is the BENCH_harness.json record: the same quick fig9
// sweep timed sequentially and on the worker pool, with the byte-equality
// verdict the harness's determinism contract promises.
type harnessBench struct {
	Bench        string  `json:"bench"`
	Experiment   string  `json:"experiment"`
	Seed         uint64  `json:"seed"`
	Cores        int     `json:"cores"`
	Parallel     int     `json:"parallel"`
	SequentialNs int64   `json:"sequential_ns"`
	ParallelNs   int64   `json:"parallel_ns"`
	Speedup      float64 `json:"speedup"`
	Identical    bool    `json:"outputs_identical"`
}

func runBenchHarness(seed uint64, parallel int, outPath string) int {
	o := experiments.Options{Seed: seed, Quick: true}
	render := func(width int) (string, time.Duration, error) {
		opts := o
		opts.Exec = &harness.Executor{Parallel: width}
		start := time.Now()
		f, err := experiments.Figure9(opts, "memcached")
		if err != nil {
			return "", 0, err
		}
		return f.String(), time.Since(start), nil
	}
	seqOut, seqDur, err := render(1)
	if err != nil {
		cliflags.Fail("experiments: benchharness", err)
	}
	parOut, parDur, err := render(parallel)
	if err != nil {
		cliflags.Fail("experiments: benchharness", err)
	}
	b := harnessBench{
		Bench:        "harness-parallel",
		Experiment:   "fig9mc-quick",
		Seed:         seed,
		Cores:        runtime.NumCPU(),
		Parallel:     parallel,
		SequentialNs: seqDur.Nanoseconds(),
		ParallelNs:   parDur.Nanoseconds(),
		Speedup:      float64(seqDur) / float64(parDur),
		Identical:    seqOut == parOut,
	}
	if err := writeTo(outPath, func(w io.Writer) error {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(b)
	}); err != nil {
		cliflags.Fail("experiments: benchharness", err)
	}
	fmt.Printf("benchharness: fig9mc -quick sequential %v, -parallel %d %v (%.2fx); outputs identical: %v\n",
		seqDur.Round(time.Millisecond), parallel, parDur.Round(time.Millisecond), b.Speedup, b.Identical)
	if !b.Identical {
		fmt.Fprintln(os.Stderr, "experiments: benchharness: parallel output diverged from sequential output")
		return cliflags.ExitFailure
	}
	return cliflags.ExitOK
}

func writeTo(path string, write func(w io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
