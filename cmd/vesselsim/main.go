// Command vesselsim runs one configurable colocation simulation and prints
// the per-app results and the machine cycle breakdown.
//
// Usage:
//
//	vesselsim [-sched vessel|caladan|caladan-dr-l|caladan-dr-h|linux|arachne]
//	          [-cores N] [-load frac] [-lapp memcached|silo]
//	          [-bapp linpack|membench|none] [-duration ms] [-bwtarget frac]
//	          [-seed N]
package main

import (
	"flag"
	"fmt"
	"os"

	"vessel"
)

func main() {
	schedName := flag.String("sched", "vessel", "scheduler to run")
	cores := flag.Int("cores", 16, "worker cores in the domain")
	load := flag.Float64("load", 0.5, "L-app offered load as a fraction of ideal capacity")
	lapp := flag.String("lapp", "memcached", "latency-critical app: memcached or silo")
	bapp := flag.String("bapp", "linpack", "best-effort app: linpack, membench or none")
	durMs := flag.Int("duration", 50, "measured duration in milliseconds")
	bwTarget := flag.Float64("bwtarget", 0, "B-app bandwidth budget as a fraction of machine bandwidth (0 = off)")
	seed := flag.Uint64("seed", 1, "simulation seed")
	timeline := flag.Bool("timeline", false, "render Figure 7-style core timelines of a 100µs window")
	chromeOut := flag.String("chrometrace", "", "write a chrome://tracing JSON of the run to this file")
	traceOut := flag.String("trace", "", "write the observability span timeline to this file (convert with traceconv)")
	profile := flag.Bool("profile", false, "print the cycle-attribution profile after the run")
	flag.Parse()

	s, err := vessel.NewScheduler(*schedName)
	if err != nil {
		fatal(err)
	}
	var dist vessel.ServiceDist
	switch *lapp {
	case "memcached":
		dist = vessel.MemcachedDist()
	case "silo":
		dist = vessel.SiloDist()
	default:
		fatal(fmt.Errorf("unknown L-app %q", *lapp))
	}
	rate := *load * vessel.IdealCapacity(*cores, dist)
	apps := []*vessel.App{vessel.NewLApp(*lapp, dist, rate)}
	switch *bapp {
	case "linpack":
		apps = append(apps, vessel.NewLinpack())
	case "membench":
		apps = append(apps, vessel.NewMembench())
	case "none":
	default:
		fatal(fmt.Errorf("unknown B-app %q", *bapp))
	}

	cfg := vessel.Config{
		Seed:         *seed,
		Cores:        *cores,
		Duration:     vessel.Duration(*durMs) * vessel.Millisecond,
		Warmup:       vessel.Duration(*durMs) * vessel.Millisecond / 5,
		Apps:         apps,
		Costs:        vessel.DefaultCosts(),
		BWTargetFrac: *bwTarget,
	}
	var rec *vessel.TraceRecorder
	if *timeline || *chromeOut != "" {
		rec = vessel.NewTraceRecorder(1 << 20)
		cfg.Trace = rec
	}
	var o *vessel.Observer
	if *traceOut != "" || *profile {
		o = vessel.NewObserver(0)
		cfg.Obs = o
	}
	res, err := s.Run(cfg)
	if err != nil {
		fatal(err)
	}

	fmt.Printf("scheduler: %s   cores: %d   measured: %v\n\n", res.Scheduler, res.Cores, res.Measured)
	for _, a := range res.Apps {
		fmt.Printf("%-12s %-6s", a.Name, a.Kind)
		if a.Kind == 0 { // latency-critical
			fmt.Printf(" tput=%.3f Mops  norm=%.3f  %s\n",
				a.Tput.PerSecond()/1e6, a.NormTput, a.Latency)
		} else {
			fmt.Printf(" cpu=%.1f core-s-equivalent  norm=%.3f  bw=%.1f GB/s\n",
				float64(a.BUsefulNs)/1e9, a.NormTput, a.AvgBWGBs)
		}
	}
	bd := res.Cycles
	total := float64(bd.Total())
	fmt.Printf("\ntotal normalized throughput: %.3f (ideal 1.0)\n", res.TotalNormTput())
	fmt.Printf("cycle breakdown: app %.1f%%  runtime %.1f%%  kernel %.1f%%  switch %.1f%%  idle %.1f%%\n",
		100*float64(bd.AppNs)/total, 100*float64(bd.RuntimeNs)/total,
		100*float64(bd.KernelNs)/total, 100*float64(bd.SwitchNs)/total,
		100*float64(bd.IdleNs)/total)
	fmt.Printf("switches: %d   preemptions: %d   core reallocations: %d\n",
		res.Switches, res.Preemptions, res.Reallocations)
	if *timeline {
		from := vessel.Time(cfg.Warmup)
		to := from + vessel.Time(100*vessel.Microsecond)
		fmt.Println()
		fmt.Print(rec.Render(cfg.Cores, from, to, 100))
	}
	if *chromeOut != "" {
		f, err := os.Create(*chromeOut)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := rec.WriteChromeJSON(f); err != nil {
			fatal(err)
		}
		fmt.Printf("\nchrome trace written to %s (open in chrome://tracing or Perfetto)\n", *chromeOut)
	}
	if *profile {
		fmt.Println()
		fmt.Print(o.Profile().Table(20))
	}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := o.WriteText(f); err != nil {
			fatal(err)
		}
		fmt.Printf("\nspan timeline written to %s (%d spans, %d overwritten; convert with traceconv)\n",
			*traceOut, o.SpanCount(), o.Overwritten())
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "vesselsim:", err)
	os.Exit(1)
}
