// Command vesselsim runs one configurable colocation simulation and prints
// the per-app results and the machine cycle breakdown.
//
// Usage:
//
//	vesselsim [-sched vessel|caladan|caladan-dr-l|caladan-dr-h|linux|arachne]
//	          [-cores N] [-load frac] [-lapp memcached|silo]
//	          [-bapp linpack|membench|none] [-duration ms] [-bwtarget frac]
//	          [-seed N] [-out file]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"vessel"
	"vessel/internal/harness/cliflags"
)

func main() {
	schedName := flag.String("sched", "vessel", "scheduler to run")
	cores := flag.Int("cores", 16, "worker cores in the domain")
	load := flag.Float64("load", 0.5, "L-app offered load as a fraction of ideal capacity")
	lapp := flag.String("lapp", "memcached", "latency-critical app: memcached or silo")
	bapp := flag.String("bapp", "linpack", "best-effort app: linpack, membench or none")
	durMs := flag.Int("duration", 50, "measured duration in milliseconds")
	bwTarget := flag.Float64("bwtarget", 0, "B-app bandwidth budget as a fraction of machine bandwidth (0 = off)")
	seed := cliflags.Seed(1)
	outPath := cliflags.Out()
	timeline := flag.Bool("timeline", false, "render Figure 7-style core timelines of a 100µs window")
	chromeOut := flag.String("chrometrace", "", "write a chrome://tracing JSON of the run to this file")
	traceOut := flag.String("trace", "", "write the observability span timeline to this file (convert with traceconv)")
	journeyOut := flag.String("journey", "", "write the request-journey export to this file (convert with traceconv) and print the critical-path breakdown")
	journeySample := flag.Int("journeysample", 1, "with -journey: trace 1 in N requests (1 traces all; sampling bounds overhead at high load)")
	flightOut := flag.String("flightdump", "", "with -journey: snapshot the flight recorder at run end and write the black-box dump to this file")
	profile := flag.Bool("profile", false, "print the cycle-attribution profile after the run")
	flag.Parse()

	s, err := vessel.NewScheduler(*schedName)
	if err != nil {
		os.Exit(cliflags.UsageErr("vesselsim", err))
	}
	var dist vessel.ServiceDist
	switch *lapp {
	case "memcached":
		dist = vessel.MemcachedDist()
	case "silo":
		dist = vessel.SiloDist()
	default:
		os.Exit(cliflags.UsageErr("vesselsim", fmt.Errorf("unknown L-app %q", *lapp)))
	}
	rate := *load * vessel.IdealCapacity(*cores, dist)
	apps := []*vessel.App{vessel.NewLApp(*lapp, dist, rate)}
	switch *bapp {
	case "linpack":
		apps = append(apps, vessel.NewLinpack())
	case "membench":
		apps = append(apps, vessel.NewMembench())
	case "none":
	default:
		os.Exit(cliflags.UsageErr("vesselsim", fmt.Errorf("unknown B-app %q", *bapp)))
	}

	cfg := vessel.Config{
		Seed:         *seed,
		Cores:        *cores,
		Duration:     vessel.Duration(*durMs) * vessel.Millisecond,
		Warmup:       vessel.Duration(*durMs) * vessel.Millisecond / 5,
		Apps:         apps,
		Costs:        vessel.DefaultCosts(),
		BWTargetFrac: *bwTarget,
	}
	var rec *vessel.TraceRecorder
	if *timeline || *chromeOut != "" {
		rec = vessel.NewTraceRecorder(1 << 20)
		cfg.Trace = rec
	}
	var o *vessel.Observer
	if *traceOut != "" || *profile {
		o = vessel.NewObserver(0)
		cfg.Obs = o
	}
	var tr *vessel.JourneyTracer
	if *journeyOut != "" {
		tr = vessel.NewJourneyTracerWith(vessel.JourneyConfig{SampleEvery: *journeySample})
		cfg.Journey = tr
	}
	res, err := s.Run(cfg)
	if err != nil {
		cliflags.Fail("vesselsim", err)
	}

	w, closeOut, err := cliflags.OutWriter(*outPath)
	if err != nil {
		os.Exit(cliflags.UsageErr("vesselsim", err))
	}

	fmt.Fprintf(w, "scheduler: %s   cores: %d   measured: %v\n\n", res.Scheduler, res.Cores, res.Measured)
	for _, a := range res.Apps {
		fmt.Fprintf(w, "%-12s %-6s", a.Name, a.Kind)
		if a.Kind == 0 { // latency-critical
			fmt.Fprintf(w, " tput=%.3f Mops  norm=%.3f  %s\n",
				a.Tput.PerSecond()/1e6, a.NormTput, a.Latency)
		} else {
			fmt.Fprintf(w, " cpu=%.1f core-s-equivalent  norm=%.3f  bw=%.1f GB/s\n",
				float64(a.BUsefulNs)/1e9, a.NormTput, a.AvgBWGBs)
		}
	}
	bd := res.Cycles
	total := float64(bd.Total())
	fmt.Fprintf(w, "\ntotal normalized throughput: %.3f (ideal 1.0)\n", res.TotalNormTput())
	fmt.Fprintf(w, "cycle breakdown: app %.1f%%  runtime %.1f%%  kernel %.1f%%  switch %.1f%%  idle %.1f%%\n",
		100*float64(bd.AppNs)/total, 100*float64(bd.RuntimeNs)/total,
		100*float64(bd.KernelNs)/total, 100*float64(bd.SwitchNs)/total,
		100*float64(bd.IdleNs)/total)
	fmt.Fprintf(w, "switches: %d   preemptions: %d   core reallocations: %d\n",
		res.Switches, res.Preemptions, res.Reallocations)
	if *timeline {
		from := vessel.Time(cfg.Warmup)
		to := from + vessel.Time(100*vessel.Microsecond)
		fmt.Fprintln(w)
		fmt.Fprint(w, rec.Render(cfg.Cores, from, to, 100))
	}
	if *chromeOut != "" {
		if err := writeTo(*chromeOut, rec.WriteChromeJSON); err != nil {
			cliflags.Fail("vesselsim", err)
		}
		fmt.Fprintf(w, "\nchrome trace written to %s (open in chrome://tracing or Perfetto)\n", *chromeOut)
	}
	if *profile {
		fmt.Fprintln(w)
		fmt.Fprint(w, o.Profile().Table(20))
	}
	if *traceOut != "" {
		if err := writeTo(*traceOut, o.WriteText); err != nil {
			cliflags.Fail("vesselsim", err)
		}
		fmt.Fprintf(w, "\nspan timeline written to %s (%d spans, %d overwritten; convert with traceconv)\n",
			*traceOut, o.SpanCount(), o.Overwritten())
	}
	if *journeyOut != "" {
		if err := writeTo(*journeyOut, tr.WriteText); err != nil {
			cliflags.Fail("vesselsim", err)
		}
		fmt.Fprintln(w)
		fmt.Fprint(w, tr.Analyze())
		fmt.Fprintf(w, "journey export written to %s (%d journeys, flight-overwritten %d; convert with traceconv)\n",
			*journeyOut, len(tr.Records()), tr.Flight().Overwritten())
		if *journeySample > 1 {
			seen, minted := tr.Sampled()
			fmt.Fprintf(w, "journey sampling: 1 in %d — traced %d of %d requests\n",
				*journeySample, minted, seen)
		}
		if *flightOut != "" {
			d := tr.Dump(vessel.Time(cfg.Warmup+cfg.Duration), "vesselsim.end")
			if err := os.WriteFile(*flightOut, []byte(d.Text()), 0o644); err != nil {
				cliflags.Fail("vesselsim", err)
			}
			fmt.Fprintf(w, "flight-recorder dump written to %s (%d events, %d overwritten)\n",
				*flightOut, len(d.Events), d.Overwritten)
		}
	}
	if err := closeOut(); err != nil {
		cliflags.Fail("vesselsim", err)
	}
}

func writeTo(path string, write func(w io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
