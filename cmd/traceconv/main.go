// Command traceconv converts the plain-text interchange files written by
// the observability layer — span timelines (-trace on vesselsim,
// experiments, or chaosbench) and request-journey exports (-journey on
// vesselsim) — into downstream formats, and validates trace documents.
//
// Usage:
//
//	traceconv -in run.obs -format chrome    [-out trace.json]
//	traceconv -in run.obs -format collapsed [-out stacks.txt]
//	traceconv -in run.obs -format gantt [-from us] [-to us] [-width N]
//	traceconv -in run.journey -format chrome|collapsed|text
//	traceconv -validate trace.json
//	traceconv -validate run.obs
//	traceconv -validate run.journey
//
// The input kind is detected from the header line ("# vessel-obs-timeline
// v1" vs "# vessel-journey v1"; Chrome JSON for -validate). chrome output
// opens in chrome://tracing or Perfetto (journey inputs add flow arrows
// for the follows-from edges); collapsed output feeds flamegraph.pl-style
// tooling; gantt renders an ASCII per-core timeline directly to the
// terminal. -validate always reports the overwritten count of text
// inputs, so a truncated export is visible instead of silently partial.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"vessel/internal/obs"
	"vessel/internal/obs/journey"
	"vessel/internal/sim"
)

var (
	in       = flag.String("in", "", "input interchange file (obs timeline or journey export)")
	format   = flag.String("format", "chrome", "output format: chrome, collapsed, gantt (obs) or text (journey)")
	out      = flag.String("out", "", "output file (default stdout)")
	fromUs   = flag.Int64("from", 0, "gantt window start in microseconds (0 = full range)")
	toUs     = flag.Int64("to", 0, "gantt window end in microseconds (0 = full range)")
	width    = flag.Int("width", 100, "gantt columns")
	validate = flag.String("validate", "", "validate a Chrome trace JSON or text interchange file and exit")
)

// sniff reads enough of the file to classify it, then returns a reader
// positioned at the start.
func sniff(path string) (kind string, r io.ReadCloser, err error) {
	f, err := os.Open(path)
	if err != nil {
		return "", nil, err
	}
	br := bufio.NewReader(f)
	head, _ := br.Peek(64)
	line := string(head)
	if i := strings.IndexByte(line, '\n'); i >= 0 {
		line = line[:i]
	}
	switch {
	case strings.HasPrefix(strings.TrimSpace(line), "{"):
		kind = "chrome"
	case strings.TrimSpace(line) == journey.Header:
		kind = "journey"
	default:
		kind = "obs" // obs.ReadTextMeta enforces its own header
	}
	return kind, struct {
		io.Reader
		io.Closer
	}{br, f}, nil
}

func main() {
	flag.Parse()

	if *validate != "" {
		runValidate(*validate)
		return
	}

	if *in == "" {
		fatal(fmt.Errorf("-in is required (or use -validate FILE)"))
	}
	kind, f, err := sniff(*in)
	if err != nil {
		fatal(err)
	}

	w := io.Writer(os.Stdout)
	if *out != "" {
		of, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer of.Close()
		w = of
	}

	switch kind {
	case "journey":
		recs, overwritten, err := journey.ReadText(f)
		f.Close()
		if err != nil {
			fatal(fmt.Errorf("%s: %w", *in, err))
		}
		switch *format {
		case "chrome":
			err = journey.WriteChromeTrace(w, recs)
		case "collapsed":
			err = journey.WriteCollapsed(w, recs)
		case "text":
			err = journey.WriteText(w, recs, overwritten)
		default:
			err = fmt.Errorf("unknown journey format %q (want chrome, collapsed or text)", *format)
		}
		if err != nil {
			fatal(err)
		}
		if *out != "" {
			fmt.Printf("%s: wrote %s (%d journeys, flight-overwritten %d)\n",
				*format, *out, len(recs), overwritten)
		}
	default:
		spans, overwritten, err := obs.ReadTextMeta(f)
		f.Close()
		if err != nil {
			fatal(fmt.Errorf("%s: %w", *in, err))
		}
		switch *format {
		case "chrome":
			err = obs.WriteChromeTrace(w, spans)
		case "collapsed":
			_, err = io.WriteString(w, obs.FromSpans(spans).Collapsed())
		case "gantt":
			from := sim.Time(*fromUs * int64(sim.Microsecond))
			to := sim.Time(*toUs * int64(sim.Microsecond))
			err = obs.WriteGantt(w, spans, from, to, *width)
		default:
			err = fmt.Errorf("unknown format %q (want chrome, collapsed or gantt)", *format)
		}
		if err != nil {
			fatal(err)
		}
		if *out != "" {
			fmt.Printf("%s: wrote %s (%d spans, overwritten %d)\n", *format, *out, len(spans), overwritten)
		}
	}
}

// runValidate checks a file of any supported kind and prints what it
// holds — including the overwritten counts of text interchange forms, so
// ring-truncated traces announce themselves.
func runValidate(path string) {
	kind, f, err := sniff(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	switch kind {
	case "chrome":
		if err := obs.ValidateChromeTrace(f); err != nil {
			fatal(fmt.Errorf("%s: %w", path, err))
		}
		fmt.Printf("%s: valid chrome trace\n", path)
	case "journey":
		recs, overwritten, err := journey.ReadText(f)
		if err != nil {
			fatal(fmt.Errorf("%s: %w", path, err))
		}
		finished, nodes := 0, 0
		for _, r := range recs {
			if r.Finished {
				finished++
			}
			nodes += len(r.Nodes)
		}
		fmt.Printf("%s: valid journey export (%d journeys, %d finished, %d nodes, flight-overwritten %d)\n",
			path, len(recs), finished, nodes, overwritten)
	default:
		spans, overwritten, err := obs.ReadTextMeta(f)
		if err != nil {
			fatal(fmt.Errorf("%s: %w", path, err))
		}
		fmt.Printf("%s: valid obs timeline (%d spans, overwritten %d)\n", path, len(spans), overwritten)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "traceconv:", err)
	os.Exit(1)
}
