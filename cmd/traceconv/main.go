// Command traceconv converts the plain-text span timelines written by the
// observability layer (-trace on vesselsim, experiments, or chaosbench)
// into downstream formats, and validates Chrome trace documents.
//
// Usage:
//
//	traceconv -in run.obs -format chrome    [-out trace.json]
//	traceconv -in run.obs -format collapsed [-out stacks.txt]
//	traceconv -in run.obs -format gantt [-from us] [-to us] [-width N]
//	traceconv -validate trace.json
//
// chrome output opens in chrome://tracing or Perfetto; collapsed output
// feeds flamegraph.pl-style tooling; gantt renders an ASCII per-core
// timeline directly to the terminal.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"vessel/internal/obs"
	"vessel/internal/sim"
)

var (
	in       = flag.String("in", "", "input span timeline (written by -trace)")
	format   = flag.String("format", "chrome", "output format: chrome, collapsed or gantt")
	out      = flag.String("out", "", "output file (default stdout)")
	fromUs   = flag.Int64("from", 0, "gantt window start in microseconds (0 = full range)")
	toUs     = flag.Int64("to", 0, "gantt window end in microseconds (0 = full range)")
	width    = flag.Int("width", 100, "gantt columns")
	validate = flag.String("validate", "", "validate a Chrome trace JSON file and exit")
)

func main() {
	flag.Parse()

	if *validate != "" {
		f, err := os.Open(*validate)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := obs.ValidateChromeTrace(f); err != nil {
			fatal(fmt.Errorf("%s: %w", *validate, err))
		}
		fmt.Printf("%s: valid chrome trace\n", *validate)
		return
	}

	if *in == "" {
		fatal(fmt.Errorf("-in is required (or use -validate FILE)"))
	}
	f, err := os.Open(*in)
	if err != nil {
		fatal(err)
	}
	spans, err := obs.ReadText(f)
	f.Close()
	if err != nil {
		fatal(fmt.Errorf("%s: %w", *in, err))
	}

	w := io.Writer(os.Stdout)
	if *out != "" {
		of, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer of.Close()
		w = of
	}

	switch *format {
	case "chrome":
		err = obs.WriteChromeTrace(w, spans)
	case "collapsed":
		_, err = io.WriteString(w, obs.FromSpans(spans).Collapsed())
	case "gantt":
		from := sim.Time(*fromUs * int64(sim.Microsecond))
		to := sim.Time(*toUs * int64(sim.Microsecond))
		err = obs.WriteGantt(w, spans, from, to, *width)
	default:
		err = fmt.Errorf("unknown format %q (want chrome, collapsed or gantt)", *format)
	}
	if err != nil {
		fatal(err)
	}
	if *out != "" {
		fmt.Printf("%s: wrote %s (%d spans)\n", *format, *out, len(spans))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "traceconv:", err)
	os.Exit(1)
}
