// Command conformancebench drives the differential conformance harness:
// it generates seed-numbered randomized scenarios, runs each on all four
// scheduler simulators (VESSEL, Caladan, Arachne, Linux/CFS), and checks
// every result against the universal invariants plus the cross-scheduler
// metamorphic oracles (determinism, VESSEL's switch-cycle bound, load
// monotonicity). On the first violation it greedily shrinks the scenario
// to a locally minimal reproducer and prints the one-line replay command.
//
// Each scenario's four scheduler pipelines run on a worker pool
// (-parallel); results merge in a fixed system order, so the report —
// and the exit status — is byte-identical at any width. The -paracheck
// mode runs the parallel-determinism oracle itself: the same plan of
// scenario runs executed sequentially and at -parallel N must produce
// identical canonical result bytes and spec hashes.
//
// Typical uses:
//
//	go run ./cmd/conformancebench -seeds 50 -quick          # CI sweep
//	go run ./cmd/conformancebench -seeds 500                # long sweep
//	go run ./cmd/conformancebench -replay '<json token>'    # one repro
//	go run ./cmd/conformancebench -plant overcount -seeds 5 # demo shrinking
//	go run ./cmd/conformancebench -paracheck -seeds 20      # executor oracle
//
// Exit status: 0 when every oracle passed, 1 on any violation, 2 on usage
// or scenario-decoding errors.
package main

import (
	"flag"
	"fmt"
	"os"

	"vessel/internal/conformance"
	"vessel/internal/harness"
	"vessel/internal/harness/cliflags"
	"vessel/internal/sched"
	"vessel/internal/workload"
)

var (
	seeds        = flag.Int("seeds", 50, "number of generated scenarios to sweep")
	seed0        = flag.Uint64("seed0", 1, "first scenario seed")
	quick        = cliflags.Quick()
	parallel     = cliflags.Parallel()
	replay       = flag.String("replay", "", "replay one scenario from its JSON token instead of sweeping")
	plant        = flag.String("plant", "", "install a known tampering hook (overcount|nondet) to demonstrate detection and shrinking")
	paracheck    = flag.Bool("paracheck", false, "run the parallel-determinism oracle over the sweep's scenarios instead of the conformance oracles")
	shrinkBudget = flag.Int("shrink-budget", 120, "max candidate evaluations while shrinking a failure")
	verbose      = flag.Bool("v", false, "log every scenario, not just failures")
)

// installPlant wires one of the demo bugs into the post-run hook so a
// sweep (and the replay of its shrunk repro) reproduces a known violation.
func installPlant(name string) error {
	switch name {
	case "":
		return nil
	case "overcount":
		// VESSEL over-reports L-app completions: caught by the
		// completed-le-offered invariant.
		sched.RegisterPostRunHook(func(_ sched.Config, r *sched.Result) {
			if r.Scheduler != "VESSEL" {
				return
			}
			for i := range r.Apps {
				if r.Apps[i].Kind == workload.LatencyCritical {
					r.Apps[i].Completed = r.Apps[i].Offered + 1
				}
			}
		})
	case "nondet":
		// Linux's switch count drifts between identically seeded runs:
		// caught by the determinism oracle.
		flip := false
		sched.RegisterPostRunHook(func(_ sched.Config, r *sched.Result) {
			if r.Scheduler != "Linux" {
				return
			}
			flip = !flip
			if flip {
				r.Switches++
			}
		})
	default:
		return fmt.Errorf("unknown plant %q (want overcount or nondet)", name)
	}
	return nil
}

func plantFlag() string {
	if *plant == "" {
		return ""
	}
	return "-plant " + *plant
}

// reportFailure shrinks the failing scenario and prints the minimal
// reproducer with its replay command.
func reportFailure(sc conformance.Scenario, rep conformance.Report) {
	fmt.Printf("FAIL seed %d: %d violation(s)\n", sc.Seed, len(rep.Violations))
	for _, v := range rep.Violations {
		fmt.Printf("  %s\n", v)
	}
	first := rep.Violations[0]
	fmt.Printf("shrinking on [%s] %s ...\n", first.System, first.Oracle)
	min, tried := conformance.Shrink(sc, conformance.SameOracleFails(first), *shrinkBudget)
	fmt.Printf("minimal reproducer after %d candidate runs (%d apps, %d cores, %d µs):\n",
		tried, len(min.Apps), min.Cores, min.DurationUs)
	fmt.Printf("  %s\n", min.Encode())
	fmt.Printf("replay: %s\n", conformance.ReplayCommand(min, plantFlag()))
}

func runReplay(token string) int {
	sc, err := conformance.Decode(token)
	if err != nil {
		return cliflags.UsageErr("conformancebench", fmt.Errorf("bad replay token: %w", err))
	}
	rep, err := conformance.RunScenario(sc)
	if err != nil {
		return cliflags.UsageErr("conformancebench", err)
	}
	for name, res := range rep.Results {
		if *verbose {
			fmt.Printf("--- %s\n%s", name, res.Canonical())
		}
	}
	if rep.Failed() {
		fmt.Printf("FAIL: %d violation(s) on replayed scenario (seed %d)\n", len(rep.Violations), sc.Seed)
		for _, v := range rep.Violations {
			fmt.Printf("  %s\n", v)
		}
		return cliflags.ExitFailure
	}
	fmt.Printf("PASS: replayed scenario (seed %d) clean across %d runs\n", sc.Seed, rep.Runs)
	return cliflags.ExitOK
}

func runSweep() int {
	exec := &harness.Executor{Parallel: *parallel}
	totalRuns, failures := 0, 0
	for i := 0; i < *seeds; i++ {
		seed := *seed0 + uint64(i)
		sc := conformance.Generate(seed, *quick)
		rep, err := conformance.RunScenarioExec(sc, exec)
		if err != nil {
			return cliflags.UsageErr("conformancebench", fmt.Errorf("seed %d: %w", seed, err))
		}
		totalRuns += rep.Runs
		if rep.Failed() {
			failures++
			reportFailure(sc, rep)
			continue
		}
		if *verbose {
			fmt.Printf("ok   seed %d: %d apps, %d cores, %d µs, %d runs\n",
				seed, len(sc.Apps), sc.Cores, sc.DurationUs, rep.Runs)
		}
	}
	if failures > 0 {
		fmt.Printf("%d/%d scenarios failed (%d scheduler runs)\n", failures, *seeds, totalRuns)
		return cliflags.ExitFailure
	}
	fmt.Printf("conformance: %d scenarios x 4 schedulers clean (%d scheduler runs, 0 violations)\n", *seeds, totalRuns)
	return cliflags.ExitOK
}

// runParacheck builds one plan from the sweep's scenarios — every
// scenario crossed with every registered scheduler — and checks that a
// sequential execution and a -parallel execution of that plan agree
// cell-by-cell on canonical result bytes and spec hashes.
func runParacheck() int {
	var plan harness.Plan
	for i := 0; i < *seeds; i++ {
		sc := conformance.Generate(*seed0+uint64(i), *quick)
		if err := sc.Validate(); err != nil {
			return cliflags.UsageErr("conformancebench", fmt.Errorf("seed %d: %w", sc.Seed, err))
		}
		for _, name := range harness.SchedulerNames() {
			plan.Add(sc.Spec(name))
		}
	}
	vs := conformance.CheckPlanDeterminism(plan, *parallel)
	if len(vs) > 0 {
		fmt.Printf("FAIL: %d parallel-determinism violation(s) across %d plan cells\n", len(vs), plan.Len())
		for _, v := range vs {
			fmt.Printf("  %s\n", v)
		}
		return cliflags.ExitFailure
	}
	fmt.Printf("paracheck: %d plan cells byte-identical at -parallel 1 and -parallel %d\n",
		plan.Len(), *parallel)
	return cliflags.ExitOK
}

func main() {
	flag.Parse()
	if err := installPlant(*plant); err != nil {
		os.Exit(cliflags.UsageErr("conformancebench", err))
	}
	if *replay != "" {
		os.Exit(runReplay(*replay))
	}
	if *paracheck {
		os.Exit(runParacheck())
	}
	os.Exit(runSweep())
}
