// Command mmubench runs the simulated-MMU fast-path benchmarks (the same
// bodies `go test -bench` uses, via internal/mmubench) and writes the
// results to a JSON artifact, BENCH_mmu.json. Fast and slow variants run in
// the same process, so the reported speedups are ratios on identical
// hardware rather than absolute numbers that drift across CI machines.
//
// Exit status is nonzero when a hard perf gate fails:
//
//   - the non-faulting Step path must not allocate (allocs/op == 0);
//   - the page-sized bulk read must not allocate (allocs/op == 0);
//   - superblock-fused Step must be ≥2× the per-instruction fast path
//     (the PR 5 16 ns/instr baseline, measured in-process as
//     core_step_nosb);
//   - Step must be ≥2× the disabled-fast-path walk;
//   - ReadBytes of a page must be ≥5× the per-byte reference.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"testing"

	"vessel/internal/mmubench"
)

type benchResult struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	Iterations  int     `json:"iterations"`
}

type report struct {
	Results  []benchResult      `json:"results"`
	Speedups map[string]float64 `json:"speedups"`
	// WholeMachineIPS is simulated instructions per wall-second across
	// all cores of the MachineCores-core IPS benchmark — the
	// whole-machine figure of merit, gated softly (a warning, not a
	// failure: absolute throughput drifts with CI hardware).
	WholeMachineIPS float64  `json:"whole_machine_ips"`
	Warnings        []string `json:"warnings,omitempty"`
	Gates           []string `json:"gates_failed,omitempty"`
}

// softIPSFloor is the soft regression floor for whole-machine IPS.
// Dropping below it prints a warning and lands in the artifact, but does
// not fail the run.
const softIPSFloor = 1e6

func run(name string, fn func(*testing.B)) benchResult {
	r := testing.Benchmark(fn)
	return benchResult{
		Name:        name,
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
		Iterations:  r.N,
	}
}

func main() {
	out := flag.String("o", "BENCH_mmu.json", "output JSON path")
	flag.Parse()

	// Each pair is (fast, baseline): the speedup key names the fast
	// side, suffixed by the baseline when one fast bench is gated
	// against several references. zeroAlloc gates the fast side's
	// non-faulting path at 0 allocs/op.
	pairs := []struct {
		name, key  string
		fast, base func(*testing.B)
		baseName   string
		minSpeedup float64
		zeroAlloc  bool
	}{
		// The superblock gate: fused execution vs the per-instruction
		// fast path it replaced (PR 5's 16 ns/instr), in-process.
		{"core_step", "core_step_superblock", mmubench.BenchCoreStep, mmubench.BenchCoreStepNoSB, "core_step_nosb", 2, true},
		{"core_step", "core_step", mmubench.BenchCoreStep, mmubench.BenchCoreStepSlow, "core_step_slow", 2, false},
		{"as_check_hit", "as_check_hit", mmubench.BenchASCheckHit, mmubench.BenchASCheckHitSlow, "as_check_hit_slow", 1, false},
		{"read_bytes_4k", "read_bytes_4k", mmubench.BenchReadBytes4K, mmubench.BenchReadBytes4KSlow, "read_bytes_4k_slow", 5, true},
	}

	rep := report{Speedups: map[string]float64{}}
	cache := map[string]benchResult{}
	measure := func(name string, fn func(*testing.B)) benchResult {
		if r, ok := cache[name]; ok {
			return r
		}
		r := run(name, fn)
		cache[name] = r
		rep.Results = append(rep.Results, r)
		return r
	}
	for _, p := range pairs {
		fast := measure(p.name, p.fast)
		base := measure(p.baseName, p.base)
		speedup := base.NsPerOp / fast.NsPerOp
		rep.Speedups[p.key] = speedup
		fmt.Printf("%-20s fast %8.2f ns/op (%d allocs/op)  %s %9.2f ns/op  speedup %.2fx\n",
			p.key, fast.NsPerOp, fast.AllocsPerOp, p.baseName, base.NsPerOp, speedup)
		if p.zeroAlloc && fast.AllocsPerOp != 0 {
			rep.Gates = append(rep.Gates,
				fmt.Sprintf("%s allocates %d/op on the non-faulting path; want 0", p.name, fast.AllocsPerOp))
		}
		if speedup < p.minSpeedup {
			rep.Gates = append(rep.Gates,
				fmt.Sprintf("%s speedup %.2fx below required %.0fx (vs %s)", p.key, speedup, p.minSpeedup, p.baseName))
		}
	}

	ips := run("machine_ips", mmubench.BenchMachineIPS)
	rep.Results = append(rep.Results, ips)
	rep.WholeMachineIPS = float64(mmubench.MachineCores) * 1e9 / ips.NsPerOp
	fmt.Printf("%-16s %8.2f ns/op across %d cores  whole-machine %.2fM instructions/wall-second\n",
		"machine_ips", ips.NsPerOp, mmubench.MachineCores, rep.WholeMachineIPS/1e6)
	if rep.WholeMachineIPS < softIPSFloor {
		rep.Warnings = append(rep.Warnings,
			fmt.Sprintf("whole-machine IPS %.0f below soft floor %.0f", rep.WholeMachineIPS, softIPSFloor))
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "mmubench:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "mmubench:", err)
		os.Exit(1)
	}
	fmt.Println("wrote", *out)
	for _, warn := range rep.Warnings {
		fmt.Fprintln(os.Stderr, "soft gate:", warn)
	}
	for _, g := range rep.Gates {
		fmt.Fprintln(os.Stderr, "GATE FAILED:", g)
	}
	if len(rep.Gates) > 0 {
		os.Exit(1)
	}
}
