// Command chaosbench demonstrates uProcess crash containment under the
// deterministic fault-injection harness: it runs a park-loop "survivor"
// uProcess twice — once next to a calm neighbour (baseline) and once next
// to a supervised crash-looper plus seeded Uintr tampering (chaos) — and
// compares the survivor's activation-gap latency distribution across the
// two runs. A bounded P999 factor is the containment claim: a crash-looping
// tenant costs its neighbours a slowdown, never a stall, and its region and
// protection key are reclaimed and recycled on every cycle.
package main

import (
	"flag"
	"fmt"
	"os"

	"vessel/internal/cpu"
	"vessel/internal/faultinject"
	"vessel/internal/mem"
	"vessel/internal/obs"
	"vessel/internal/sim"
	"vessel/internal/smas"
	"vessel/internal/stats"
	"vessel/internal/uproc"
	"vessel/internal/vessel"
)

var (
	seed     = flag.Uint64("seed", 42, "fault-plan seed (same seed → identical run)")
	steps    = flag.Int("steps", 800_000, "per-core instruction budget")
	quantum  = flag.Int("quantum", 400, "preemption/injection quantum in instructions")
	random   = flag.Int("random", 8, "extra random Uintr drop/delay faults")
	events   = flag.Int("events", 12, "containment-trace tail lines to print")
	traceOut = flag.String("trace", "", "write the chaos run's observability span timeline to this file")
)

func parkLoop(mg *vessel.Manager, name string) *smas.Program {
	a := cpu.NewAssembler()
	a.Label("loop")
	a.Emit(cpu.AddImm{Dst: cpu.RDX, Imm: 1})
	a.Emit(cpu.Call{Target: mg.Domain.GatePark.Entry})
	a.JmpTo("loop")
	return &smas.Program{Name: name, Asm: a, PIE: true, DataSize: mem.PageSize, StackSize: 2 * mem.PageSize}
}

// crasher parks once, then wild-stores into the runtime region: a PKRU
// violation attributed to it, contained by killing only the offender.
func crasher(mg *vessel.Manager, name string) *smas.Program {
	a := cpu.NewAssembler()
	a.Emit(cpu.AddImm{Dst: cpu.RDX, Imm: 1})
	a.Emit(cpu.Call{Target: mg.Domain.GatePark.Entry})
	a.Emit(cpu.MovImm{Dst: cpu.RCX, Imm: cpu.Word(smas.RuntimeBase)})
	a.Emit(cpu.Store{Src: cpu.RDX, Base: cpu.RCX})
	a.Emit(cpu.Halt{})
	return &smas.Program{Name: name, Asm: a, PIE: true, DataSize: mem.PageSize, StackSize: 2 * mem.PageSize}
}

type runResult struct {
	rep     vessel.ChaosReport
	mg      *vessel.Manager
	summary stats.Summary
}

func run(chaotic bool, o *obs.Observer) (runResult, error) {
	mg, err := vessel.NewManager(1, nil)
	if err != nil {
		return runResult{}, err
	}
	mg.AttachObs(o)
	good, err := mg.Launch("good", parkLoop(mg, "good"), 0)
	if err != nil {
		return runResult{}, err
	}
	h := stats.NewHistogram()
	var lastNs float64
	started := false
	mg.Domain.OnActivate = func(core int, th *uproc.Thread) {
		if th.U != good {
			return
		}
		ns := mg.Machine().NsFor(mg.Machine().Core(core).Cycles)
		if started {
			h.Record(int64(ns - lastNs))
		}
		started = true
		lastNs = ns
	}
	if chaotic {
		mg.EnableWatchdog(2000, 8000)
		_, err = mg.Supervise("crash", func() *smas.Program { return crasher(mg, "crash") }, 0,
			vessel.RestartPolicy{Backoff: 1 * sim.Microsecond, MaxBackoff: 8 * sim.Microsecond})
		if err != nil {
			return runResult{}, err
		}
		mg.InjectFaults(faultinject.Plan{
			Seed:         *seed,
			Random:       *random,
			RandomKinds:  []faultinject.Kind{faultinject.DropUintr, faultinject.DelayUintr},
			RandomCores:  1,
			RandomWindow: 300 * sim.Microsecond,
		})
	} else {
		if _, err = mg.Launch("calm", parkLoop(mg, "calm"), 0); err != nil {
			return runResult{}, err
		}
	}
	if err := mg.Start(0); err != nil {
		return runResult{}, err
	}
	rep, err := mg.RunChaos(vessel.ChaosConfig{Steps: *steps, Quantum: *quantum})
	if err != nil {
		return runResult{}, err
	}
	return runResult{rep: rep, mg: mg, summary: h.Summarize()}, nil
}

func main() {
	flag.Parse()
	fmt.Printf("chaosbench: survivor latency with a crash-looping neighbour (seed=%d, %d steps @ quantum %d)\n\n",
		*seed, *steps, *quantum)

	base, err := run(false, nil)
	if err != nil {
		fmt.Fprintf(os.Stderr, "chaosbench: baseline: %v\n", err)
		os.Exit(1)
	}
	var o *obs.Observer
	if *traceOut != "" {
		o = obs.New(0)
	}
	chaos, err := run(true, o)
	if err != nil {
		fmt.Fprintf(os.Stderr, "chaosbench: chaos: %v\n", err)
		os.Exit(1)
	}

	fmt.Printf("survivor activation gaps:\n")
	fmt.Printf("  baseline (calm neighbour):   %s\n", base.summary)
	fmt.Printf("  chaos (crash-loop + tamper): %s\n", chaos.summary)
	if base.summary.P999 > 0 {
		fmt.Printf("  p999 factor: %.2fx\n", float64(chaos.summary.P999)/float64(base.summary.P999))
	}

	rep := chaos.rep
	fmt.Printf("\nchaos run: rounds=%d preemptions=%d restarts=%d watchdog-kills=%d contained-faults=%d fatal-cores=%v\n",
		rep.Rounds, rep.Preemptions, rep.Restarts, rep.WatchdogKills, rep.ContainedFaults, rep.FatalCores)
	avail := chaos.mg.Domain.S.Keys.Available()
	fmt.Printf("pkeys: %d/%d available after %d crash/restart cycles (no leak)\n",
		avail, smas.MaxUProcs, rep.Restarts)

	if inj := chaos.mg.Injector(); inj != nil {
		fmt.Printf("\ninjector counters:\n")
		for _, kv := range inj.Counters.Snapshot() {
			fmt.Printf("  %-24s %d\n", kv.Name, kv.Value)
		}
	}

	if *events > 0 {
		fmt.Printf("\ncontainment trace (last %d of %d events):\n", *events, chaos.mg.Events().Len())
		for _, e := range chaos.mg.Events().Tail(*events) {
			fmt.Printf("  %s\n", e)
		}
	}

	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "chaosbench:", err)
			os.Exit(1)
		}
		if err := o.WriteText(f); err != nil {
			f.Close()
			fmt.Fprintln(os.Stderr, "chaosbench:", err)
			os.Exit(1)
		}
		f.Close()
		fmt.Printf("\nspan timeline written to %s (%d spans; convert with traceconv)\n",
			*traceOut, o.SpanCount())
	}

	if rep.Restarts == 0 || rep.ContainedFaults == 0 {
		fmt.Fprintln(os.Stderr, "\nchaosbench: chaos run exercised no containment — tune flags")
		os.Exit(1)
	}
	fmt.Println("\ncontainment held: the crash loop cost a bounded slowdown, not a stall")
}
