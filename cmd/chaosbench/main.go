// Command chaosbench demonstrates uProcess crash containment under the
// deterministic fault-injection harness: it runs a park-loop "survivor"
// uProcess twice — once next to a calm neighbour (baseline) and once next
// to a supervised crash-looper plus seeded Uintr tampering (chaos) — and
// compares the survivor's activation-gap latency distribution across the
// two runs. A bounded P999 factor is the containment claim: a crash-looping
// tenant costs its neighbours a slowdown, never a stall, and its region and
// protection key are reclaimed and recycled on every cycle.
//
// With -seeds N the chaos run is swept over N consecutive fault-plan
// seeds on a worker pool (-parallel): per-seed lines print in seed order
// and the per-seed latency histograms and injector counters fold into
// one merged distribution, so the report is byte-identical at any
// -parallel width.
package main

import (
	"flag"
	"fmt"
	"os"

	"vessel/internal/cpu"
	"vessel/internal/faultinject"
	"vessel/internal/harness"
	"vessel/internal/harness/cliflags"
	"vessel/internal/mem"
	"vessel/internal/obs"
	"vessel/internal/sim"
	"vessel/internal/smas"
	"vessel/internal/stats"
	"vessel/internal/uproc"
	"vessel/internal/vessel"
)

var (
	seed     = flag.Uint64("seed", 42, "first fault-plan seed (same seed → identical run)")
	seeds    = flag.Int("seeds", 1, "number of consecutive fault-plan seeds to sweep")
	parallel = cliflags.Parallel()
	steps    = flag.Int("steps", 800_000, "per-core instruction budget")
	quantum  = flag.Int("quantum", 400, "preemption/injection quantum in instructions")
	random   = flag.Int("random", 8, "extra random Uintr drop/delay faults")
	events   = flag.Int("events", 12, "containment-trace tail lines to print")
	traceOut = flag.String("trace", "", "write the chaos run's observability span timeline to this file")
	soak     = flag.Bool("soak", false, "run the cluster self-healing soak (five fault classes, MTTR and determinism gates) instead of the containment benchmark")
	benchOut = flag.String("out", "BENCH_chaos.json", "soak mode: write the benchmark summary JSON here (empty disables)")
)

func parkLoop(mg *vessel.Manager, name string) *smas.Program {
	a := cpu.NewAssembler()
	a.Label("loop")
	a.Emit(cpu.AddImm{Dst: cpu.RDX, Imm: 1})
	a.Emit(cpu.Call{Target: mg.Domain.GatePark.Entry})
	a.JmpTo("loop")
	return &smas.Program{Name: name, Asm: a, PIE: true, DataSize: mem.PageSize, StackSize: 2 * mem.PageSize}
}

// crasher parks once, then wild-stores into the runtime region: a PKRU
// violation attributed to it, contained by killing only the offender.
func crasher(mg *vessel.Manager, name string) *smas.Program {
	a := cpu.NewAssembler()
	a.Emit(cpu.AddImm{Dst: cpu.RDX, Imm: 1})
	a.Emit(cpu.Call{Target: mg.Domain.GatePark.Entry})
	a.Emit(cpu.MovImm{Dst: cpu.RCX, Imm: cpu.Word(smas.RuntimeBase)})
	a.Emit(cpu.Store{Src: cpu.RDX, Base: cpu.RCX})
	a.Emit(cpu.Halt{})
	return &smas.Program{Name: name, Asm: a, PIE: true, DataSize: mem.PageSize, StackSize: 2 * mem.PageSize}
}

type runResult struct {
	rep     vessel.ChaosReport
	mg      *vessel.Manager
	hist    *stats.Histogram
	summary stats.Summary
}

func run(chaotic bool, planSeed uint64, o *obs.Observer) (runResult, error) {
	mg, err := vessel.NewManager(1, nil)
	if err != nil {
		return runResult{}, err
	}
	mg.AttachObs(o)
	good, err := mg.Launch("good", parkLoop(mg, "good"), 0)
	if err != nil {
		return runResult{}, err
	}
	h := stats.NewHistogram()
	var lastNs float64
	started := false
	mg.Domain.OnActivate = func(core int, th *uproc.Thread) {
		if th.U != good {
			return
		}
		ns := mg.Machine().NsFor(mg.Machine().Core(core).Cycles)
		if started {
			h.Record(int64(ns - lastNs))
		}
		started = true
		lastNs = ns
	}
	if chaotic {
		mg.EnableWatchdog(2000, 8000)
		_, err = mg.Supervise("crash", func() *smas.Program { return crasher(mg, "crash") }, 0,
			vessel.RestartPolicy{Backoff: 1 * sim.Microsecond, MaxBackoff: 8 * sim.Microsecond})
		if err != nil {
			return runResult{}, err
		}
		mg.InjectFaults(faultinject.Plan{
			Seed:         planSeed,
			Random:       *random,
			RandomKinds:  []faultinject.Kind{faultinject.DropUintr, faultinject.DelayUintr},
			RandomCores:  1,
			RandomWindow: 300 * sim.Microsecond,
		})
	} else {
		if _, err = mg.Launch("calm", parkLoop(mg, "calm"), 0); err != nil {
			return runResult{}, err
		}
	}
	if err := mg.Start(0); err != nil {
		return runResult{}, err
	}
	rep, err := mg.RunChaos(vessel.ChaosConfig{Steps: *steps, Quantum: *quantum})
	if err != nil {
		return runResult{}, err
	}
	return runResult{rep: rep, mg: mg, hist: h, summary: h.Summarize()}, nil
}

// runChaosSweep runs the chaos scenario once per seed on the worker pool
// and folds the per-seed results — histograms via Histogram.Merge,
// injector counters via Counters.Merge, report fields by summation — in
// seed order, so the merged output is independent of -parallel.
func runChaosSweep(n int, traceObs *obs.Observer) ([]runResult, error) {
	results := make([]runResult, n)
	exec := &harness.Executor{Parallel: *parallel}
	err := exec.Map(n, func(i int) error {
		var o *obs.Observer
		if i == 0 {
			o = traceObs
		}
		r, err := run(true, *seed+uint64(i), o)
		if err != nil {
			return fmt.Errorf("seed %d: %w", *seed+uint64(i), err)
		}
		results[i] = r
		return nil
	})
	if err != nil {
		return nil, err
	}
	return results, nil
}

func main() {
	flag.Parse()
	if *seeds < 1 {
		os.Exit(cliflags.UsageErr("chaosbench", fmt.Errorf("-seeds must be ≥ 1 (got %d)", *seeds)))
	}
	if *soak {
		soakMain()
		return
	}
	fmt.Printf("chaosbench: survivor latency with a crash-looping neighbour (seed=%d, seeds=%d, %d steps @ quantum %d)\n\n",
		*seed, *seeds, *steps, *quantum)

	base, err := run(false, *seed, nil)
	if err != nil {
		cliflags.Fail("chaosbench: baseline", err)
	}
	var traceObs *obs.Observer
	if *traceOut != "" {
		traceObs = obs.New(0)
	}
	chaosRuns, err := runChaosSweep(*seeds, traceObs)
	if err != nil {
		cliflags.Fail("chaosbench: chaos", err)
	}

	// Fold the sweep in seed order: merged histogram, merged injector
	// counters, summed report fields. With -seeds 1 this degenerates to
	// the single-run report.
	merged := stats.NewHistogram()
	counters := stats.NewCounters()
	var rep vessel.ChaosReport
	for _, r := range chaosRuns {
		merged.Merge(r.hist)
		if inj := r.mg.Injector(); inj != nil {
			counters.Merge(inj.Counters)
		}
		rep.Rounds += r.rep.Rounds
		rep.Preemptions += r.rep.Preemptions
		rep.Restarts += r.rep.Restarts
		rep.WatchdogKills += r.rep.WatchdogKills
		rep.ContainedFaults += r.rep.ContainedFaults
		rep.FatalCores = append(rep.FatalCores, r.rep.FatalCores...)
	}
	chaosSummary := merged.Summarize()

	fmt.Printf("survivor activation gaps:\n")
	fmt.Printf("  baseline (calm neighbour):   %s\n", base.summary)
	fmt.Printf("  chaos (crash-loop + tamper): %s\n", chaosSummary)
	if base.summary.P999 > 0 {
		fmt.Printf("  p999 factor: %.2fx\n", float64(chaosSummary.P999)/float64(base.summary.P999))
	}
	if *seeds > 1 {
		fmt.Printf("\nper-seed chaos runs:\n")
		for i, r := range chaosRuns {
			fmt.Printf("  seed %-6d %s  restarts=%d contained=%d\n",
				*seed+uint64(i), r.summary, r.rep.Restarts, r.rep.ContainedFaults)
		}
	}

	fmt.Printf("\nchaos run: rounds=%d preemptions=%d restarts=%d watchdog-kills=%d contained-faults=%d fatal-cores=%v\n",
		rep.Rounds, rep.Preemptions, rep.Restarts, rep.WatchdogKills, rep.ContainedFaults, rep.FatalCores)
	lastChaos := chaosRuns[len(chaosRuns)-1]
	avail := lastChaos.mg.Domain.S.Keys.Available()
	fmt.Printf("pkeys: %d/%d available after %d crash/restart cycles (no leak)\n",
		avail, smas.MaxUProcs, lastChaos.rep.Restarts)

	if len(counters.Names()) > 0 {
		fmt.Printf("\ninjector counters (merged across %d seed(s)):\n", *seeds)
		for _, kv := range counters.Snapshot() {
			fmt.Printf("  %-24s %d\n", kv.Name, kv.Value)
		}
	}

	if *events > 0 {
		fmt.Printf("\ncontainment trace (last %d of %d events, seed %d):\n",
			*events, lastChaos.mg.Events().Len(), *seed+uint64(len(chaosRuns)-1))
		for _, e := range lastChaos.mg.Events().Tail(*events) {
			fmt.Printf("  %s\n", e)
		}
	}

	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			cliflags.Fail("chaosbench", err)
		}
		if err := traceObs.WriteText(f); err != nil {
			f.Close()
			cliflags.Fail("chaosbench", err)
		}
		f.Close()
		fmt.Printf("\nspan timeline written to %s (%d spans; convert with traceconv)\n",
			*traceOut, traceObs.SpanCount())
	}

	for i, r := range chaosRuns {
		if r.rep.Restarts == 0 || r.rep.ContainedFaults == 0 {
			fmt.Fprintf(os.Stderr, "\nchaosbench: seed %d exercised no containment — tune flags\n", *seed+uint64(i))
			os.Exit(cliflags.ExitFailure)
		}
	}
	fmt.Println("\ncontainment held: the crash loop cost a bounded slowdown, not a stall")
}
