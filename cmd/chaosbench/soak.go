package main

// The -soak mode: a multi-seed sweep of the cluster self-healing layer.
// Every seed builds a two-domain cluster of supervised park-loop workers,
// injects all five self-healing fault classes (core stall, domain crash,
// policy panic, Uintr storm, pkey leak) plus seed-randomised legacy Uintr
// tampering, and runs the supervision loop to quiescence — TWICE, because
// the headline claim is determinism: same seed, byte-identical recovery
// history. The sweep gates hard on zero conformance violations, full
// recovery-path coverage per seed, MTTR within the declared budget, and
// the double-run byte equality, then emits BENCH_chaos.json for CI.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"

	"vessel/internal/conformance"
	"vessel/internal/faultinject"
	"vessel/internal/harness"
	"vessel/internal/harness/cliflags"
	"vessel/internal/selfheal"
	"vessel/internal/sim"
	"vessel/internal/smas"
	"vessel/internal/stats"
	"vessel/internal/vessel"
)

const (
	soakDomains      = 2
	soakCoresPerDom  = 2
	soakMTTRBudgetNs = int64(sim.Millisecond) // detect (500µs) + restart (500µs)
)

// soakCluster builds one seed's scenario: 2 domains × 2 cores, one
// supervised park-loop worker per core, watchdogs armed, and per-domain
// fault plans covering all five self-healing classes.
func soakCluster(planSeed uint64) (*selfheal.Cluster, []*faultinject.Injector, error) {
	c, err := selfheal.New(selfheal.Config{
		Domains:        soakDomains,
		CoresPerDomain: soakCoresPerDom,
		WatchdogSoft:   20_000,
		WatchdogHard:   60_000,
	})
	if err != nil {
		return nil, nil, err
	}
	for dom := 0; dom < soakDomains; dom++ {
		for core := 0; core < soakCoresPerDom; core++ {
			name := fmt.Sprintf("d%dw%d", dom, core)
			err := c.AddWorker(dom, name, func(mg *vessel.Manager) *smas.Program {
				return parkLoop(mg, name)
			}, core, vessel.RestartPolicy{})
			if err != nil {
				return nil, nil, err
			}
		}
	}
	// Domain 0 exercises the machine-level classes; domain 1 the
	// policy/interrupt classes. Random legacy tampering rides on both.
	inj0 := c.InjectFaults(0, faultinject.Plan{
		Seed: planSeed,
		Faults: []faultinject.Fault{
			{Kind: faultinject.CoreStall, Core: 1, At: sim.Time(10 * sim.Microsecond)},
			{Kind: faultinject.PkeyLeak, At: sim.Time(15 * sim.Microsecond)},
			{Kind: faultinject.DomainCrash, At: sim.Time(50 * sim.Microsecond)},
		},
		Random:       *random,
		RandomKinds:  []faultinject.Kind{faultinject.DropUintr, faultinject.DelayUintr},
		RandomCores:  soakCoresPerDom,
		RandomWindow: 300 * sim.Microsecond,
	})
	inj1 := c.InjectFaults(1, faultinject.Plan{
		Seed: planSeed + 1_000_003,
		Faults: []faultinject.Fault{
			{Kind: faultinject.PolicyPanic, At: sim.Time(10 * sim.Microsecond)},
			{Kind: faultinject.UintrStorm, At: sim.Time(20 * sim.Microsecond), Delay: 20 * sim.Microsecond},
		},
		Random:       *random,
		RandomKinds:  []faultinject.Kind{faultinject.DropUintr, faultinject.UintrStorm},
		RandomCores:  soakCoresPerDom,
		RandomWindow: 100 * sim.Microsecond,
	})
	return c, []*faultinject.Injector{inj0, inj1}, nil
}

type soakSeedResult struct {
	seed          uint64
	rep           *selfheal.Report
	counters      *stats.Counters // merged injector counters
	deterministic bool
	violations    []conformance.Violation
}

// soakSeed runs one seed's scenario twice and gates it through the
// conformance oracle.
func soakSeed(planSeed uint64) (soakSeedResult, error) {
	runOnce := func() (*selfheal.Report, *stats.Counters, error) {
		c, injs, err := soakCluster(planSeed)
		if err != nil {
			return nil, nil, err
		}
		rep, err := c.Run(*steps, *quantum)
		if err != nil {
			return nil, nil, err
		}
		merged := stats.NewCounters()
		for _, inj := range injs {
			merged.Merge(inj.Counters)
		}
		return rep, merged, nil
	}
	rep1, ctr, err := runOnce()
	if err != nil {
		return soakSeedResult{}, err
	}
	rep2, _, err := runOnce()
	if err != nil {
		return soakSeedResult{}, err
	}
	r := soakSeedResult{
		seed:          planSeed,
		rep:           rep1,
		counters:      ctr,
		deterministic: bytes.Equal(rep1.Canonical(), rep2.Canonical()),
	}
	// Every seed must exercise every recovery path — the plan guarantees
	// the triggers, the oracle verifies the recoveries happened.
	r.violations = conformance.CheckSelfHeal(
		fmt.Sprintf("soak-seed-%d", planSeed),
		selfheal.Config{}, // cluster defaults: 500µs detect + 500µs restart
		rep1,
		conformance.SelfHealExpect{MinFences: 1, MinRestarts: 1, MinPolicySwaps: 1, MinPkeysHealed: 1},
	)
	return r, nil
}

// soakBench is the BENCH_chaos.json schema. Struct fields marshal in
// declaration order and the one map is sorted by encoding/json, so the
// file is byte-deterministic for a given sweep.
type soakBench struct {
	Bench          string           `json:"bench"`
	FirstSeed      uint64           `json:"first_seed"`
	Seeds          int              `json:"seeds"`
	Steps          int              `json:"steps"`
	Quantum        int              `json:"quantum"`
	Domains        int              `json:"domains"`
	CoresPerDomain int              `json:"cores_per_domain"`
	Fences         int              `json:"fences"`
	DomainRestarts int              `json:"domain_restarts"`
	PolicySwaps    int              `json:"policy_swaps"`
	PkeysHealed    int              `json:"pkeys_healed"`
	EventsCancel   int              `json:"events_cancelled"`
	MTTRSamples    uint64           `json:"mttr_samples"`
	MTTRMaxNs      int64            `json:"mttr_max_ns"`
	MTTRP99Ns      int64            `json:"mttr_p99_ns"`
	MTTRBudgetNs   int64            `json:"mttr_budget_ns"`
	Violations     int              `json:"violations"`
	DeterminismOK  bool             `json:"determinism_ok"`
	KindsFired     map[string]uint64 `json:"kinds_fired"`
	Pass           bool             `json:"pass"`
}

func soakMain() {
	fmt.Printf("chaosbench -soak: cluster self-healing sweep (seed=%d, seeds=%d, %d steps @ quantum %d, %d domains × %d cores)\n\n",
		*seed, *seeds, *steps, *quantum, soakDomains, soakCoresPerDom)

	results := make([]soakSeedResult, *seeds)
	exec := &harness.Executor{Parallel: *parallel}
	err := exec.Map(*seeds, func(i int) error {
		r, err := soakSeed(*seed + uint64(i))
		if err != nil {
			return fmt.Errorf("seed %d: %w", *seed+uint64(i), err)
		}
		results[i] = r
		return nil
	})
	if err != nil {
		cliflags.Fail("chaosbench: soak", err)
	}

	bench := soakBench{
		Bench:          "chaos-soak",
		FirstSeed:      *seed,
		Seeds:          *seeds,
		Steps:          *steps,
		Quantum:        *quantum,
		Domains:        soakDomains,
		CoresPerDomain: soakCoresPerDom,
		MTTRBudgetNs:   soakMTTRBudgetNs,
		DeterminismOK:  true,
		KindsFired:     map[string]uint64{},
	}
	fired := stats.NewCounters()
	failed := false
	for _, r := range results {
		bench.Fences += r.rep.Fences
		bench.DomainRestarts += r.rep.DomainRestarts
		bench.PolicySwaps += r.rep.PolicySwaps
		bench.PkeysHealed += r.rep.PkeysHealed
		bench.EventsCancel += r.rep.EventsCancelled
		bench.MTTRSamples += r.rep.MTTR.Count
		if r.rep.MTTR.Max > bench.MTTRMaxNs {
			bench.MTTRMaxNs = r.rep.MTTR.Max
		}
		if r.rep.MTTR.P99 > bench.MTTRP99Ns {
			bench.MTTRP99Ns = r.rep.MTTR.P99
		}
		bench.Violations += len(r.violations)
		fired.Merge(r.counters)

		status := "ok"
		if !r.deterministic {
			bench.DeterminismOK = false
			status = "NONDETERMINISTIC"
			failed = true
		}
		if len(r.violations) > 0 {
			status = "VIOLATIONS"
			failed = true
		}
		fmt.Printf("  seed %-6d fences=%d restarts=%d swaps=%d healed-keys=%d mttr-max=%dns  %s\n",
			r.seed, r.rep.Fences, r.rep.DomainRestarts, r.rep.PolicySwaps,
			r.rep.PkeysHealed, r.rep.MTTR.Max, status)
		for _, v := range r.violations {
			fmt.Printf("    %s\n", v)
		}
	}

	// Coverage gate: every one of the five classes must actually have
	// fired somewhere in the sweep (a plan that silently skips a class
	// proves nothing about recovering from it).
	for _, kind := range []string{"corestall", "domaincrash", "policypanic", "uintr.storm", "pkeyleak"} {
		n := fired.Get("inject." + kind)
		bench.KindsFired[kind] = n
		if n == 0 {
			fmt.Printf("\nsoak: fault class %q never fired across the sweep\n", kind)
			failed = true
		}
	}
	if bench.MTTRMaxNs > soakMTTRBudgetNs {
		fmt.Printf("\nsoak: MTTR max %dns exceeds budget %dns\n", bench.MTTRMaxNs, soakMTTRBudgetNs)
		failed = true
	}
	bench.Pass = !failed

	fmt.Printf("\nsweep: fences=%d restarts=%d swaps=%d healed-keys=%d cancelled-events=%d\n",
		bench.Fences, bench.DomainRestarts, bench.PolicySwaps, bench.PkeysHealed, bench.EventsCancel)
	fmt.Printf("mttr: samples=%d p99=%dns max=%dns (budget %dns)\n",
		bench.MTTRSamples, bench.MTTRP99Ns, bench.MTTRMaxNs, bench.MTTRBudgetNs)
	fmt.Printf("determinism: double-run canonical bytes identical for all %d seeds: %v\n",
		*seeds, bench.DeterminismOK)

	if *benchOut != "" {
		data, err := json.MarshalIndent(bench, "", "  ")
		if err != nil {
			cliflags.Fail("chaosbench: soak", err)
		}
		if err := os.WriteFile(*benchOut, append(data, '\n'), 0o644); err != nil {
			cliflags.Fail("chaosbench: soak", err)
		}
		fmt.Printf("benchmark summary written to %s\n", *benchOut)
	}

	if failed {
		fmt.Println("\nself-healing soak FAILED")
		os.Exit(cliflags.ExitFailure)
	}
	fmt.Println("\nself-healing held: every fault class recovered, deterministically, within budget")
}
