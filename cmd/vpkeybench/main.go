// Command vpkeybench measures the cost of libmpk-style protection-key
// virtualization (DESIGN.md §14) and writes the results to a JSON
// artifact, BENCH_vpkey.json. All numbers are simulated cycles, so they
// are exact and machine-independent; every scenario also runs twice and
// must produce byte-identical fingerprints.
//
// Exit status is nonzero when a hard gate fails:
//
//   - warm: with the live-key count within the hardware slots, the
//     per-crossing cycle cost under virtualization must be within 5% of
//     the direct-keyed path (it is in fact identical — the resident fast
//     path does zero re-tags);
//   - storm: with 3× more uProcesses than slots, evictions must actually
//     happen, every re-tag must be attributed, no single eviction may
//     re-tag more pages than the largest bound region (cost is O(region),
//     not O(address space)), and re-tag work must stay a bounded share of
//     total cycles;
//   - density: 100 uProcesses in ONE domain with the full lifecycle
//     oracle (slot uniqueness, eviction fencing, attribution, leak
//     audit) reporting zero violations;
//   - every scenario is deterministic: two runs, identical bytes.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"hash/fnv"
	"os"

	"vessel/internal/conformance"
	"vessel/internal/cpu"
	"vessel/internal/mem"
	"vessel/internal/smas"
	"vessel/internal/vessel"
)

type scenarioResult struct {
	Name    string             `json:"name"`
	Metrics map[string]float64 `json:"metrics"`
	// Fingerprint is the FNV-64a hash of the run's canonical bytes (full
	// event log + per-core counters); the artifact carries the hash, the
	// determinism gate compares the raw bytes in-process.
	Fingerprint string `json:"fingerprint"`
	fpRaw       string `json:"-"`
}

type report struct {
	Scenarios []scenarioResult `json:"scenarios"`
	Gates     []string         `json:"gates_failed,omitempty"`
}

func worker(mg *vessel.Manager, name string, work int64) *smas.Program {
	a := cpu.NewAssembler()
	a.Label("loop")
	a.Emit(cpu.Work{N: work})
	a.Emit(cpu.Call{Target: mg.Domain.GatePark.Entry})
	a.JmpTo("loop")
	return &smas.Program{Name: name, Asm: a, PIE: true, DataSize: mem.PageSize, StackSize: 2 * mem.PageSize}
}

// drive launches n workers across the manager's cores and runs every
// core timesliced, returning total cycles and total parks.
func drive(mg *vessel.Manager, n, cores, steps int) (cycles int64, parks uint64, err error) {
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("w%03d", i)
		if _, err := mg.Launch(name, worker(mg, name, 200+int64(i)*17), i%cores); err != nil {
			return 0, 0, fmt.Errorf("launch %s: %w", name, err)
		}
	}
	for core := 0; core < cores; core++ {
		if err := mg.Start(core); err != nil {
			return 0, 0, err
		}
		if _, err := mg.RunTimesliced(core, steps, 701); err != nil {
			return 0, 0, fmt.Errorf("core %d: %w", core, err)
		}
	}
	for core := 0; core < cores; core++ {
		cycles += mg.Machine().Core(core).Cycles
		p, _ := mg.Domain.CoreStats(core)
		parks += p
	}
	return cycles, parks, nil
}

// fingerprint folds the event log and per-core counters into the bytes
// the determinism gate compares.
func fingerprint(mg *vessel.Manager, cores int) string {
	fp := mg.Events().String()
	for core := 0; core < cores; core++ {
		parks, preempts := mg.Domain.CoreStats(core)
		fp += fmt.Sprintf("core%d parks=%d preempts=%d cycles=%d\n",
			core, parks, preempts, mg.Machine().Core(core).Cycles)
	}
	if vt := mg.Domain.S.VKeys; vt != nil {
		fp += fmt.Sprintf("vpkey evictions=%d refills=%d retagged=%d\n",
			vt.Evictions, vt.Refills, vt.RetaggedPages)
	}
	return fp
}

// warmScenario compares per-crossing cost with 12 live keys — inside the
// 13-slot budget — between a virtualized and a direct-keyed domain.
func warmScenario() (scenarioResult, []string, error) {
	run := func(virtual bool) (float64, string, error) {
		var mg *vessel.Manager
		var err error
		if virtual {
			mg, err = vessel.NewManagerVirtual(1, nil)
		} else {
			mg, err = vessel.NewManager(1, nil)
		}
		if err != nil {
			return 0, "", err
		}
		cycles, parks, err := drive(mg, 12, 1, 200_000)
		if err != nil {
			return 0, "", err
		}
		if parks == 0 {
			return 0, "", fmt.Errorf("warm run recorded no parks")
		}
		if virtual && mg.Domain.S.VKeys.Evictions != 0 {
			return 0, "", fmt.Errorf("warm run evicted %d keys with only 12 live", mg.Domain.S.VKeys.Evictions)
		}
		return float64(cycles) / float64(parks), fingerprint(mg, 1), nil
	}
	direct, _, err := run(false)
	if err != nil {
		return scenarioResult{}, nil, err
	}
	virt, fp, err := run(true)
	if err != nil {
		return scenarioResult{}, nil, err
	}
	ratio := virt / direct
	res := scenarioResult{
		Name: "warm",
		Metrics: map[string]float64{
			"direct_cycles_per_crossing":  direct,
			"virtual_cycles_per_crossing": virt,
			"overhead_ratio":              ratio,
		},
		fpRaw: fp,
	}
	var gates []string
	if ratio > 1.05 {
		gates = append(gates, fmt.Sprintf(
			"warm: virtual crossing costs %.2f cycles vs %.2f direct (%.3fx > 1.05x allowed)",
			virt, direct, ratio))
	}
	return res, gates, nil
}

// stormScenario runs 40 uProcesses — 3× the slot budget — on two cores
// and checks that eviction cost is real, attributed, and bounded.
func stormScenario() (scenarioResult, []string, error) {
	mg, err := vessel.NewManagerVirtual(2, nil)
	if err != nil {
		return scenarioResult{}, nil, err
	}
	cycles, _, err := drive(mg, 40, 2, 200_000)
	if err != nil {
		return scenarioResult{}, nil, err
	}
	vt := mg.Domain.S.VKeys
	retagCycles := float64(vt.RetaggedPages) * float64(mg.Domain.Machine.Costs.PkeyRetagPage)
	share := retagCycles / float64(cycles)
	maxRegionPages := 0
	for _, e := range vt.LiveInfo() {
		if e.Pages > maxRegionPages {
			maxRegionPages = e.Pages
		}
	}
	maxRetag := 0
	for _, r := range vt.RetagLog {
		if r.Pages > maxRetag {
			maxRetag = r.Pages
		}
	}
	var logged uint64
	for _, r := range vt.RetagLog {
		logged += uint64(r.Pages)
	}
	res := scenarioResult{
		Name: "storm",
		Metrics: map[string]float64{
			"evictions":           float64(vt.Evictions),
			"refills":             float64(vt.Refills),
			"retagged_pages":      float64(vt.RetaggedPages),
			"retag_cycle_share":   share,
			"max_pages_per_event": float64(maxRetag),
		},
		fpRaw: fingerprint(mg, 2),
	}
	var gates []string
	if vt.Evictions == 0 || vt.Refills == 0 {
		gates = append(gates, fmt.Sprintf(
			"storm: no eviction pressure (evictions=%d refills=%d) with 40 uProcesses on 13 slots",
			vt.Evictions, vt.Refills))
	}
	if vt.RetagDropped == 0 && logged != vt.RetaggedPages {
		gates = append(gates, fmt.Sprintf(
			"storm: attribution log accounts %d pages, counter says %d", logged, vt.RetaggedPages))
	}
	if maxRetag > maxRegionPages {
		gates = append(gates, fmt.Sprintf(
			"storm: one eviction re-tagged %d pages, but the largest region binds %d — cost is not O(region)",
			maxRetag, maxRegionPages))
	}
	if share > 0.5 {
		gates = append(gates, fmt.Sprintf(
			"storm: re-tagging consumed %.1f%% of all cycles; eviction cost unbounded", share*100))
	}
	return res, gates, nil
}

// densityScenario is the acceptance demo: 100 uProcesses in ONE domain,
// full lifecycle oracle clean.
func densityScenario() (scenarioResult, []string, error) {
	mg, err := vessel.NewManagerVirtual(2, nil)
	if err != nil {
		return scenarioResult{}, nil, err
	}
	if _, _, err := drive(mg, 100, 2, 200_000); err != nil {
		return scenarioResult{}, nil, err
	}
	s := mg.Domain.S
	violations := conformance.CheckVPkeyLifecycle("density", s)
	res := scenarioResult{
		Name: "density",
		Metrics: map[string]float64{
			"uprocs":     float64(s.LiveRegionCount()),
			"resident":   float64(s.VKeys.Resident()),
			"evictions":  float64(s.VKeys.Evictions),
			"violations": float64(len(violations)),
		},
		fpRaw: fingerprint(mg, 2),
	}
	var gates []string
	if got := s.LiveRegionCount(); got < 100 {
		gates = append(gates, fmt.Sprintf("density: only %d uProcesses live, want 100", got))
	}
	for _, v := range violations {
		gates = append(gates, "density: "+v.String())
	}
	return res, gates, nil
}

func main() {
	out := flag.String("o", "BENCH_vpkey.json", "output JSON path")
	flag.Parse()

	scenarios := []struct {
		name string
		run  func() (scenarioResult, []string, error)
	}{
		{"warm", warmScenario},
		{"storm", stormScenario},
		{"density", densityScenario},
	}

	rep := report{}
	for _, sc := range scenarios {
		first, gates, err := sc.run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "vpkeybench: %s: %v\n", sc.name, err)
			os.Exit(1)
		}
		// Determinism gate: an identical second run, identical bytes.
		second, _, err := sc.run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "vpkeybench: %s (rerun): %v\n", sc.name, err)
			os.Exit(1)
		}
		if first.fpRaw != second.fpRaw {
			gates = append(gates, sc.name+": two identical runs produced different bytes")
		}
		first.Fingerprint = hashBytes(first.fpRaw)
		rep.Scenarios = append(rep.Scenarios, first)
		rep.Gates = append(rep.Gates, gates...)
		fmt.Printf("%-8s %s\n", sc.name, metricsLine(first.Metrics))
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "vpkeybench:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "vpkeybench:", err)
		os.Exit(1)
	}
	fmt.Println("wrote", *out)
	for _, g := range rep.Gates {
		fmt.Fprintln(os.Stderr, "GATE FAILED:", g)
	}
	if len(rep.Gates) > 0 {
		os.Exit(1)
	}
}

// metricsLine renders a metric map in sorted-key order so stdout is as
// deterministic as the artifact.
func metricsLine(m map[string]float64) string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	for i := 0; i < len(keys); i++ {
		for j := i + 1; j < len(keys); j++ {
			if keys[j] < keys[i] {
				keys[i], keys[j] = keys[j], keys[i]
			}
		}
	}
	s := ""
	for _, k := range keys {
		s += fmt.Sprintf("%s=%.3f ", k, m[k])
	}
	return s
}

// hashBytes is the FNV-64a digest recorded in the artifact.
func hashBytes(s string) string {
	h := fnv.New64a()
	h.Write([]byte(s))
	return fmt.Sprintf("%016x", h.Sum64())
}
