// Memory-bandwidth regulation: the Figure 13 scenario — colocate memcached
// with the memory-hungry membench under a bandwidth budget and compare how
// well each scheduler keeps the B-app inside it (and what that does to the
// L-app's tail and the machine's total throughput).
package main

import (
	"fmt"
	"log"

	"vessel"
)

func main() {
	const cores = 16
	const budgetFrac = 0.6

	fmt.Printf("bandwidth budget: %.0f%% of %.0f GB/s machine bandwidth\n\n",
		budgetFrac*100, vessel.DefaultCosts().MemBWTotal)
	fmt.Printf("%-14s %-10s %-12s %-12s %-10s\n",
		"system", "load", "total-norm", "p999-µs", "B-GB/s")
	for _, s := range []vessel.Scheduler{vessel.VESSEL(), vessel.CaladanDRLow()} {
		for _, lf := range []float64{0.3, 0.6} {
			rate := lf * vessel.IdealCapacity(cores, vessel.MemcachedDist())
			cfg := vessel.Config{
				Seed:         5,
				Cores:        cores,
				Duration:     40 * vessel.Millisecond,
				Warmup:       8 * vessel.Millisecond,
				Apps:         []*vessel.App{vessel.NewMemcached(rate), vessel.NewMembench()},
				Costs:        vessel.DefaultCosts(),
				BWTargetFrac: budgetFrac,
			}
			res, err := s.Run(cfg)
			if err != nil {
				log.Fatal(err)
			}
			mb, _ := res.App("membench")
			fmt.Printf("%-14s %-10.1f %-12.3f %-12.1f %-10.1f\n",
				s.Name(), lf, res.TotalNormTput(),
				float64(res.LAppP999())/1000, mb.AvgBWGBs)
		}
	}
	fmt.Println("\nShape to look for (paper Fig. 13a): VESSEL's µs-scale regulation sustains a")
	fmt.Println("higher total throughput under the same budget and latency constraints.")
	fmt.Println("Run cmd/experiments -run fig13b for the regulation-accuracy comparison")
	fmt.Println("against Intel MBA and Linux CFS shares.")
}
