// Quickstart: both halves of the public API in one file.
//
// Part 1 boots the mechanism-level simulated machine: two uProcesses share
// one core and context-switch through the call gate, entirely in userspace.
// Part 2 runs the performance-level simulation: memcached colocated with
// Linpack under VESSEL, printing throughput, tail latency and the cycle
// breakdown.
package main

import (
	"fmt"
	"log"

	"vessel"
)

func main() {
	mechanism()
	performance()
}

func mechanism() {
	fmt.Println("== uProcess mechanism: two apps ping-pong on one core ==")
	mgr, err := vessel.NewManager(1, nil)
	if err != nil {
		log.Fatal(err)
	}
	for _, name := range []string{"alpha", "beta"} {
		prog, err := mgr.NewProgram(name).Forever(func(b *vessel.ProgramBuilder) {
			b.Compute(2000) // ~1µs of work at 2GHz
			b.Park()        // yield through the call gate
		}).Build()
		if err != nil {
			log.Fatal(err)
		}
		if _, err := mgr.Launch(name, prog, 0); err != nil {
			log.Fatal(err)
		}
	}
	if err := mgr.Start(0); err != nil {
		log.Fatal(err)
	}
	mgr.Step(0, 50_000)
	parks, preempts := mgr.Stats(0)
	fmt.Printf("executed %.1f µs of virtual time: %d voluntary switches, %d preemptions\n",
		mgr.CyclesNs(0)/1000, parks, preempts)
	fmt.Printf("≈ %.0f ns per userspace context switch (paper Table 1: 161 ns)\n\n",
		mgr.CyclesNs(0)/float64(parks)-1000)
}

func performance() {
	fmt.Println("== VESSEL scheduling: memcached + Linpack on 16 cores ==")
	cores := 16
	load := 0.6 * vessel.IdealCapacity(cores, vessel.MemcachedDist())
	cfg := vessel.Config{
		Seed:     1,
		Cores:    cores,
		Duration: 50 * vessel.Millisecond,
		Warmup:   10 * vessel.Millisecond,
		Apps:     []*vessel.App{vessel.NewMemcached(load), vessel.NewLinpack()},
		Costs:    vessel.DefaultCosts(),
	}
	res, err := vessel.VESSEL().Run(cfg)
	if err != nil {
		log.Fatal(err)
	}
	mc, _ := res.App("memcached")
	lp, _ := res.App("linpack")
	fmt.Printf("memcached: %.2f Mops, p999 %.1f µs\n",
		mc.Tput.PerSecond()/1e6, float64(mc.Latency.P999)/1000)
	fmt.Printf("linpack:   %.3f of the machine harvested\n", lp.NormTput)
	fmt.Printf("total normalized throughput: %.3f (ideal 1.0)\n", res.TotalNormTput())
}
