// Colocation: the Figure 9 scenario as an example — sweep memcached's load
// while Linpack harvests spare cycles, comparing VESSEL with the Caladan
// variants, and print the total-normalized-throughput and tail-latency
// curves side by side.
package main

import (
	"fmt"
	"log"

	"vessel"
)

func main() {
	const cores = 16
	schedulers := []vessel.Scheduler{
		vessel.VESSEL(),
		vessel.Caladan(),
		vessel.CaladanDRLow(),
		vessel.CaladanDRHigh(),
	}
	loads := []float64{0.2, 0.4, 0.6, 0.8}

	fmt.Printf("%-14s", "system")
	for _, lf := range loads {
		fmt.Printf("  load=%.1f norm/p999µs", lf)
	}
	fmt.Println()
	for _, s := range schedulers {
		fmt.Printf("%-14s", s.Name())
		for _, lf := range loads {
			rate := lf * vessel.IdealCapacity(cores, vessel.MemcachedDist())
			cfg := vessel.Config{
				Seed:     11,
				Cores:    cores,
				Duration: 40 * vessel.Millisecond,
				Warmup:   8 * vessel.Millisecond,
				Apps:     []*vessel.App{vessel.NewMemcached(rate), vessel.NewLinpack()},
				Costs:    vessel.DefaultCosts(),
			}
			res, err := s.Run(cfg)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %13.3f/%-7.1f", res.TotalNormTput(), float64(res.LAppP999())/1000)
		}
		fmt.Println()
	}
	fmt.Println("\nShape to look for (paper Fig. 9): VESSEL's norm stays near 1 with the lowest")
	fmt.Println("tails; plain Caladan dips hardest; DR-H trades tails for efficiency vs DR-L.")
}
