// Dense colocation: the Figure 10 scenario — pack 10 memcached instances
// onto a single core with bursty arrivals and watch the schedulers diverge:
// Caladan pays a kernel-mediated reallocation per inter-app switch, VESSEL
// pays a 161 ns gate trip.
package main

import (
	"fmt"
	"log"

	"vessel"
)

func main() {
	for _, n := range []int{1, 10} {
		for _, s := range []vessel.Scheduler{vessel.VESSEL(), vessel.CaladanDRLow()} {
			agg := 0.6 * vessel.IdealCapacity(1, vessel.MemcachedDist())
			apps := make([]*vessel.App, n)
			for i := range apps {
				apps[i] = vessel.NewLApp(fmt.Sprintf("mc-%02d", i), vessel.MemcachedDist(), agg/float64(n))
				apps[i].Burst = &vessel.Burst{
					OnMean:  200 * vessel.Microsecond,
					OffMean: 200 * vessel.Microsecond,
					Factor:  2,
				}
			}
			cfg := vessel.Config{
				Seed:     3,
				Cores:    1,
				Duration: 60 * vessel.Millisecond,
				Warmup:   10 * vessel.Millisecond,
				Apps:     apps,
				Costs:    vessel.DefaultCosts(),
			}
			res, err := s.Run(cfg)
			if err != nil {
				log.Fatal(err)
			}
			var tput float64
			var p999 int64
			for _, a := range res.Apps {
				tput += a.Tput.PerSecond()
				if a.Latency.P999 > p999 {
					p999 = a.Latency.P999
				}
			}
			fmt.Printf("%-13s %2d instance(s): agg %.3f Mops, worst p999 %8.1f µs, %6d switches\n",
				s.Name(), n, tput/1e6, float64(p999)/1000, res.Switches)
		}
	}
	fmt.Println("\nShape to look for (paper Fig. 10): with 10 instances Caladan's tail inflates")
	fmt.Println("severalfold while VESSEL's stays close to the single-instance case.")
}
