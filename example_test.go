package vessel_test

import (
	"fmt"

	"vessel"
)

// ExampleVESSEL runs the paper's basic colocation: memcached sharing a
// machine with Linpack under the VESSEL scheduler.
func ExampleVESSEL() {
	cfg := vessel.Config{
		Seed:     1,
		Cores:    8,
		Duration: 20 * vessel.Millisecond,
		Warmup:   4 * vessel.Millisecond,
		Apps: []*vessel.App{
			vessel.NewMemcached(4e6), // 4 Mops offered
			vessel.NewLinpack(),
		},
		Costs: vessel.DefaultCosts(),
	}
	res, err := vessel.VESSEL().Run(cfg)
	if err != nil {
		panic(err)
	}
	mc, _ := res.App("memcached")
	fmt.Printf("memcached served %.1f Mops with p999 under 20µs: %v\n",
		mc.Tput.PerSecond()/1e6, mc.Latency.P999 < 20_000)
	fmt.Printf("total normalized throughput above 0.9: %v\n", res.TotalNormTput() > 0.9)
	// Output:
	// memcached served 4.0 Mops with p999 under 20µs: true
	// total normalized throughput above 0.9: true
}

// ExampleManager drives the mechanism level: two uProcesses time-share one
// core through the call gate.
func ExampleManager() {
	mgr, err := vessel.NewManager(1, nil)
	if err != nil {
		panic(err)
	}
	for _, name := range []string{"alpha", "beta"} {
		prog, err := mgr.NewProgram(name).Forever(func(b *vessel.ProgramBuilder) {
			b.Compute(1000).Park()
		}).Build()
		if err != nil {
			panic(err)
		}
		if _, err := mgr.Launch(name, prog, 0); err != nil {
			panic(err)
		}
	}
	if err := mgr.Start(0); err != nil {
		panic(err)
	}
	mgr.Step(0, 10_000)
	parks, _ := mgr.Stats(0)
	fmt.Printf("userspace context switches happened: %v\n", parks > 100)
	// Output:
	// userspace context switches happened: true
}

// ExampleNewScheduler compares two schedulers on the same workload.
func ExampleNewScheduler() {
	run := func(name string) float64 {
		s, err := vessel.NewScheduler(name)
		if err != nil {
			panic(err)
		}
		res, err := s.Run(vessel.Config{
			Seed:     7,
			Cores:    8,
			Duration: 20 * vessel.Millisecond,
			Warmup:   4 * vessel.Millisecond,
			Apps:     []*vessel.App{vessel.NewMemcached(4e6), vessel.NewLinpack()},
			Costs:    vessel.DefaultCosts(),
		})
		if err != nil {
			panic(err)
		}
		return res.TotalNormTput()
	}
	fmt.Printf("VESSEL keeps more of the machine than Caladan: %v\n",
		run("vessel") > run("caladan"))
	// Output:
	// VESSEL keeps more of the machine than Caladan: true
}
