package vessel

import (
	"fmt"

	"vessel/internal/cpu"
	"vessel/internal/mem"
	"vessel/internal/smas"
	"vessel/internal/uproc"
	ivessel "vessel/internal/vessel"
	"vessel/internal/vpkey"
)

// This file is the mechanism-level public API: boot a simulated machine
// with a shared memory address space, build small programs, launch them as
// uProcesses, and step the cores. Every instruction executes with the
// architectural page-permission ∧ PKRU check; context switches really go
// through the call gate.

// Manager is VESSEL's control plane over a simulated machine (§5.1).
type Manager struct {
	inner *ivessel.Manager
}

// UProc is a launched uProcess.
type UProc = uproc.UProc

// Program is a loadable application image.
type Program = smas.Program

// NewManager boots a scheduling domain with the given core count. A nil
// cost model uses DefaultCosts.
func NewManager(cores int, costs *CostModel) (*Manager, error) {
	inner, err := ivessel.NewManager(cores, costs)
	if err != nil {
		return nil, err
	}
	return &Manager{inner: inner}, nil
}

// NewManagerVirtual boots a scheduling domain with libmpk-style
// virtualized protection keys: uProcess density is no longer capped by
// the 13 hardware app keys — virtual keys are multiplexed onto the slots
// with LRU eviction and lazy re-tagging (DESIGN.md §14).
func NewManagerVirtual(cores int, costs *CostModel) (*Manager, error) {
	inner, err := ivessel.NewManagerVirtual(cores, costs)
	if err != nil {
		return nil, err
	}
	return &Manager{inner: inner}, nil
}

// WrapManager adapts a domain manager — as handed to SelfHealCluster
// worker build functions — to the public Manager surface, so workers can
// be assembled with NewProgram instead of the raw instruction set.
func WrapManager(mg *DomainManager) *Manager { return &Manager{inner: mg} }

// Launch loads a program as a uProcess and queues its main thread on core.
func (m *Manager) Launch(name string, p *Program, core int) (*UProc, error) {
	return m.inner.Launch(name, p, core)
}

// Destroy terminates a uProcess (applied lazily by the cores, §5.1).
func (m *Manager) Destroy(name string) error { return m.inner.Destroy(name) }

// Reap reclaims regions and protection keys of destroyed uProcesses whose
// lazy termination has landed, returning how many were reclaimed.
func (m *Manager) Reap() (int, error) { return m.inner.Reap() }

// Occupancy returns how many uProcesses the domain currently hosts:
// launched ones plus destroyed ones whose regions are not yet reclaimed.
// This is the domain's real liveness signal — the cluster layer keys its
// start/step fan-out on it rather than on its own launch bookkeeping,
// which goes stale when uProcesses are launched directly on the manager.
func (m *Manager) Occupancy() int { return m.inner.Occupancy() }

// Backlog returns the domain's total runqueue length across online cores —
// the demand signal the cluster scheduler's policies consume.
func (m *Manager) Backlog() int { return m.inner.Backlog() }

// DrainZombies drives the domain until every destroyed uProcess's lazy
// termination has landed, stopping at event quiescence rather than after
// a fixed instruction budget. It reports whether the zombies settled.
func (m *Manager) DrainZombies(quantum int) (bool, error) { return m.inner.DrainZombies(quantum) }

// SetClusterManaged places the domain under two-level cluster scheduling:
// every core starts released (offline), and the cluster scheduler grants
// and revokes cores through GrantCore/RevokeCore upcalls. coresPerNode
// fixes the NUMA granularity of the executor cache.
func (m *Manager) SetClusterManaged(coresPerNode int) error {
	return m.inner.SetClusterManaged(coresPerNode)
}

// CoreOnline reports whether a core is currently placeable in this domain
// (granted, and not fenced).
func (m *Manager) CoreOnline(core int) bool { return m.inner.CoreOnline(core) }

// GrantCore actuates a cluster-scheduler grant: the core comes online with
// an executor bound from the per-NUMA cache.
func (m *Manager) GrantCore(core int) error { return m.inner.GrantCore(core) }

// RevokeCore actuates a cluster-scheduler revoke: the core's queued work
// re-homes to the domain's remaining online cores, a running thread drains
// at its next gate, and the executor returns to the cache. It returns how
// many threads moved.
func (m *Manager) RevokeCore(core int) (int, error) { return m.inner.RevokeCore(core) }

// NumCores returns the domain's core count.
func (m *Manager) NumCores() int { return m.inner.Machine().NumCores() }

// Start dispatches the first thread on a core.
func (m *Manager) Start(core int) error { return m.inner.Start(core) }

// Step executes up to n instructions on a core, returning the count run.
func (m *Manager) Step(core, n int) int { return m.inner.Step(core, n) }

// Stats returns (voluntary parks, Uintr preemptions) for a core.
func (m *Manager) Stats(core int) (parks, preemptions uint64) {
	return m.inner.Domain.CoreStats(core)
}

// KeysAvailable returns the domain's remaining uProcess launch budget:
// free protection keys in the SMAS — the architectural limit (§4.1) —
// or effectively unbounded headroom when keys are virtualized. Unreaped
// zombies still hold theirs.
func (m *Manager) KeysAvailable() int { return m.inner.KeysAvailable() }

// SMAS exposes the domain's shared memory address space — the surface the
// conformance oracles (phantom-key and virtual-key lifecycle audits)
// inspect.
func (m *Manager) SMAS() *smas.SMAS { return m.inner.Domain.S }

// VPkey returns the domain's virtual protection-key table, or nil when
// keys are not virtualized.
func (m *Manager) VPkey() *vpkey.Table { return m.inner.Domain.S.VKeys }

// CyclesNs returns the virtual nanoseconds core has executed.
func (m *Manager) CyclesNs(core int) float64 {
	c := m.inner.Machine().Core(core)
	return m.inner.Machine().NsFor(c.Cycles)
}

// Preempt asks the scheduler to preempt a core through the user-interrupt
// path, optionally activating a specific thread first.
func (m *Manager) Preempt(core int, activate *Thread) error {
	return m.inner.Domain.Preempt(core, uproc.SchedCommand{Activate: activate})
}

// RunTimesliced drives a core for totalSteps instructions with a scheduler
// preemption every quantumSteps, returning the number of preemptions. A
// core stopped by an uncontained fault returns an error; a core that went
// idle returns nil.
func (m *Manager) RunTimesliced(core, totalSteps, quantumSteps int) (int, error) {
	return m.inner.RunTimesliced(core, totalSteps, quantumSteps)
}

// Events returns the containment event log (created on first use) — the
// deterministic record of injections, contained faults, watchdog kills,
// restarts, and reclaims.
func (m *Manager) Events() *EventLog { return m.inner.Events() }

// EnableWatchdog arms the per-uProcess cycle-budget watchdog: a thread
// burning more than hardCycles without a voluntary park gets its uProcess
// killed; softCycles only counts overruns.
func (m *Manager) EnableWatchdog(softCycles, hardCycles int64) {
	m.inner.EnableWatchdog(softCycles, hardCycles)
}

// InjectFaults attaches a deterministic fault plan; it fires during
// RunChaos.
func (m *Manager) InjectFaults(plan FaultPlan) *Injector { return m.inner.InjectFaults(plan) }

// Supervise launches a uProcess under a restart policy: on death its
// region and protection key are reclaimed and build() is relaunched after
// a capped exponential backoff in virtual time.
func (m *Manager) Supervise(name string, build func() *Program, core int, policy RestartPolicy) (*UProc, error) {
	return m.inner.Supervise(name, build, core, policy)
}

// RunChaos runs all cores under time slicing with fault injection, the
// watchdog, and supervised restarts, and reports what happened.
func (m *Manager) RunChaos(cfg ChaosConfig) (ChaosReport, error) { return m.inner.RunChaos(cfg) }

// FenceCore withdraws a core from placement: its queued threads are
// re-homed round-robin across the remaining healthy cores, a thread wedged
// on it is written off with its uProcess, and supervised workloads pinned
// there are re-pinned to a survivor. Fencing is one-way and idempotent;
// Launch, Wake, and the chaos scheduler all refuse a fenced core.
func (m *Manager) FenceCore(core int) error { return m.inner.FenceCore(core) }

// CoreFenced reports whether a core has been withdrawn from placement.
func (m *Manager) CoreFenced(core int) bool { return m.inner.CoreFenced(core) }

// FencedCores returns how many cores are currently fenced.
func (m *Manager) FencedCores() int { return m.inner.FencedCores() }

// CancelPending cancels every event this manager still has scheduled on
// its engine — supervised relaunch backoffs and in-flight Uintr
// deliveries — and reports how many were cancelled. Call it before tearing
// the domain down, so stale events cannot fire into its successor.
func (m *Manager) CancelPending() int { return m.inner.CancelPending() }

// Thread is a uProcess thread.
type Thread = uproc.Thread

// ProgramBuilder assembles small applications against a manager's gates
// without exposing the instruction set. State that must survive park() and
// preemption is kept in gate-preserved registers.
type ProgramBuilder struct {
	mgr  *Manager
	asm  *cpu.Assembler
	name string
	loop int
	err  error
}

// NewProgram starts building a program for this manager's domain.
func (m *Manager) NewProgram(name string) *ProgramBuilder {
	return &ProgramBuilder{mgr: m, asm: cpu.NewAssembler(), name: name}
}

// Compute emits a block of application work costing the given cycles.
func (b *ProgramBuilder) Compute(cycles int64) *ProgramBuilder {
	if cycles <= 0 {
		b.fail("Compute cycles must be positive")
		return b
	}
	b.asm.Emit(cpu.Work{N: cycles})
	return b
}

// Park emits a voluntary yield through the park call gate (§4.4).
func (b *ProgramBuilder) Park() *ProgramBuilder {
	b.asm.Emit(cpu.Call{Target: b.mgr.inner.Domain.GatePark.Entry})
	return b
}

// Exit emits uProcess-thread termination through the exit gate.
func (b *ProgramBuilder) Exit() *ProgramBuilder {
	b.asm.Emit(cpu.Call{Target: b.mgr.inner.Domain.GateExit.Entry})
	return b
}

// Repeat emits body n times around a counted loop. Repeat must not nest
// (the loop counter lives in one preserved register).
func (b *ProgramBuilder) Repeat(n uint64, body func(*ProgramBuilder)) *ProgramBuilder {
	if n == 0 {
		b.fail("Repeat count must be positive")
		return b
	}
	if b.loop > 0 {
		b.fail("Repeat must not nest")
		return b
	}
	b.loop++
	label := fmt.Sprintf("loop%d", b.asm.Len())
	b.asm.Emit(cpu.MovImm{Dst: cpu.RSI, Imm: n})
	b.asm.Label(label)
	body(b)
	b.asm.LoopTo(cpu.RSI, label)
	b.loop--
	return b
}

// Forever emits body in an infinite loop (the program never exits; it is
// scheduled in and out via park/preemption).
func (b *ProgramBuilder) Forever(body func(*ProgramBuilder)) *ProgramBuilder {
	label := fmt.Sprintf("fwd%d", b.asm.Len())
	b.asm.Label(label)
	body(b)
	b.asm.JmpTo(label)
	return b
}

func (b *ProgramBuilder) fail(msg string) {
	if b.err == nil {
		b.err = fmt.Errorf("vessel: program %q: %s", b.name, msg)
	}
}

// Build finalises the program image (PIE, one data page, two stack pages
// per default; the loader re-inspects the code at load time).
func (b *ProgramBuilder) Build() (*Program, error) {
	if b.err != nil {
		return nil, b.err
	}
	if b.asm.Len() == 0 {
		return nil, fmt.Errorf("vessel: program %q is empty", b.name)
	}
	return &Program{
		Name:      b.name,
		Asm:       b.asm,
		PIE:       true,
		DataSize:  mem.PageSize,
		StackSize: 4 * mem.PageSize,
	}, nil
}
