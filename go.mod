module vessel

go 1.23
