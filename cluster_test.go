package vessel

import (
	"fmt"
	"testing"
)

func buildParkLoop(m *Manager) (*Program, error) {
	return m.NewProgram("loop").Forever(func(b *ProgramBuilder) {
		b.Compute(500).Park()
	}).Build()
}

func TestClusterBeyondThirteenUProcesses(t *testing.T) {
	c, err := NewCluster(2, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if c.Domains() != 2 || c.Capacity() != 26 {
		t.Fatalf("domains=%d capacity=%d", c.Domains(), c.Capacity())
	}
	// 20 uProcesses exceed one domain's 13-key budget; the cluster
	// spills into the second domain.
	for i := 0; i < 20; i++ {
		name := fmt.Sprintf("app-%02d", i)
		if _, err := c.Launch(name, buildParkLoop, 0); err != nil {
			t.Fatalf("launch %s: %v", name, err)
		}
	}
	if c.Capacity() != 6 {
		t.Fatalf("capacity = %d, want 6", c.Capacity())
	}
	d0, _ := c.DomainOf("app-00")
	d13, ok := c.DomainOf("app-13")
	if !ok || d0 == d13 {
		t.Fatalf("app-13 should spill to another domain (d0=%d d13=%d)", d0, d13)
	}
	// Everything runs.
	if err := c.Start(0); err != nil {
		t.Fatal(err)
	}
	c.Step(0, 20_000)
	for i := 0; i < 2; i++ {
		parks, _ := c.Manager(i).Stats(0)
		if parks < 20 {
			t.Fatalf("domain %d parks = %d", i, parks)
		}
	}
	// Full cluster rejects the 27th.
	for i := 20; i < 26; i++ {
		if _, err := c.Launch(fmt.Sprintf("app-%02d", i), buildParkLoop, 0); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.Launch("overflow", buildParkLoop, 0); err == nil {
		t.Fatal("27th uProcess accepted")
	}
	// Destroy frees a slot.
	if err := c.Destroy("app-05"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Launch("replacement", buildParkLoop, 0); err != nil {
		t.Fatal(err)
	}
	if err := c.Destroy("missing"); err == nil {
		t.Fatal("destroy of unknown name accepted")
	}
	if _, err := c.Launch("app-00", buildParkLoop, 0); err == nil {
		t.Fatal("duplicate name accepted")
	}
	if _, err := NewCluster(0, 1, nil); err == nil {
		t.Fatal("zero domains accepted")
	}
}

// TestClusterCapacityWithDirectManagerLaunches pins the bookkeeping
// contract when uProcesses are launched directly on a domain's manager,
// behind the cluster's back: Capacity must clamp on the keys actually
// free in each SMAS, and Launch must skip the silently-full domain
// instead of failing the cluster-wide placement.
func TestClusterCapacityWithDirectManagerLaunches(t *testing.T) {
	c, err := NewCluster(2, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Exhaust domain 0's protection keys without telling the cluster.
	m0 := c.Manager(0)
	for i := 0; i < MaxUProcsPerDomain; i++ {
		prog, err := buildParkLoop(m0)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := m0.Launch(fmt.Sprintf("direct-%02d", i), prog, 0); err != nil {
			t.Fatal(err)
		}
	}
	// The cluster's own count says domain 0 is empty; the SMAS says it is
	// full. Capacity must believe the SMAS.
	if got := c.Capacity(); got != MaxUProcsPerDomain {
		t.Fatalf("capacity = %d, want %d (only domain 1)", got, MaxUProcsPerDomain)
	}
	// A cluster launch must spill straight to domain 1 — before the
	// audit, it aborted with domain 0's key-exhaustion error.
	if _, err := c.Launch("spill", buildParkLoop, 0); err != nil {
		t.Fatal(err)
	}
	if d, ok := c.DomainOf("spill"); !ok || d != 1 {
		t.Fatalf("spill placed in domain %d, want 1", d)
	}
	// Fill domain 1 and confirm exhaustion is reported as such, with no
	// phantom capacity left over from the failed attempts.
	for i := 1; i < MaxUProcsPerDomain; i++ {
		if _, err := c.Launch(fmt.Sprintf("fill-%02d", i), buildParkLoop, 0); err != nil {
			t.Fatal(err)
		}
	}
	if got := c.Capacity(); got != 0 {
		t.Fatalf("capacity = %d, want 0", got)
	}
	if _, err := c.Launch("overflow", buildParkLoop, 0); err == nil {
		t.Fatal("launch into a key-exhausted cluster accepted")
	}
}

// TestClusterDestroyWithPendingReap pins Destroy's bookkeeping when the
// lazy kill cannot land during its stepping — here the core was never
// started, so the queued kill command stays undrained. The name must be
// released immediately (the manager no longer knows it, so a stuck
// placement could never be retried) while Capacity stays honest because
// the unreaped zombie still holds its key.
func TestClusterDestroyWithPendingReap(t *testing.T) {
	c, err := NewCluster(1, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Launch("spin", buildParkLoop, 0); err != nil {
		t.Fatal(err)
	}
	if err := c.Destroy("spin"); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.DomainOf("spin"); ok {
		t.Fatal("placement not released after destroy")
	}
	// The kill has not landed: the zombie's key is still allocated, so
	// the domain offers one slot fewer than its nominal budget.
	if got := c.Capacity(); got != MaxUProcsPerDomain-1 {
		t.Fatalf("capacity = %d, want %d (zombie key still held)", got, MaxUProcsPerDomain-1)
	}
	// The freed name is immediately reusable on a fresh key.
	if _, err := c.Launch("spin", buildParkLoop, 0); err != nil {
		t.Fatal(err)
	}
}

// TestClusterLaunchSkipsFencedCores: a domain whose target core is fenced
// is passed over; placement spills to a domain still healthy on that core.
func TestClusterLaunchSkipsFencedCores(t *testing.T) {
	c, err := NewCluster(2, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Manager(0).FenceCore(0); err != nil {
		t.Fatal(err)
	}
	if !c.Manager(0).CoreFenced(0) || c.Manager(0).FencedCores() != 1 {
		t.Fatal("fence not recorded")
	}
	u, err := c.Launch("app", buildParkLoop, 0)
	if err != nil {
		t.Fatal(err)
	}
	if u == nil {
		t.Fatal("no uProcess")
	}
	if d, _ := c.DomainOf("app"); d != 1 {
		t.Fatalf("placed in domain %d, want 1 (domain 0's core 0 is fenced)", d)
	}
	// Core 1 of domain 0 is still healthy and accepts placements.
	if _, err := c.Launch("app2", buildParkLoop, 1); err != nil {
		t.Fatal(err)
	}
	if d, _ := c.DomainOf("app2"); d != 0 {
		t.Fatalf("app2 in domain %d, want 0", d)
	}
	// Fence core 0 everywhere: launches targeting it now fail.
	if err := c.Manager(1).FenceCore(0); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Launch("app3", buildParkLoop, 0); err == nil {
		t.Fatal("launch on a cluster-wide fenced core succeeded")
	}
}

// TestClusterLaunchDomainRefusalRetries: a domain that refuses a launch
// for its own reasons (here a name collision from a direct manager
// launch) is retried past, and the next domain takes the placement with
// no bookkeeping recorded for the failed attempt.
func TestClusterLaunchDomainRefusalRetries(t *testing.T) {
	c, err := NewCluster(2, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Collide the name inside domain 0 behind the cluster's back.
	m0 := c.Manager(0)
	prog, err := buildParkLoop(m0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m0.Launch("app", prog, 0); err != nil {
		t.Fatal(err)
	}
	u, err := c.Launch("app", buildParkLoop, 0)
	if err != nil {
		t.Fatalf("refusal did not spill to domain 1: %v", err)
	}
	if u == nil {
		t.Fatal("no uProcess")
	}
	if d, ok := c.DomainOf("app"); !ok || d != 1 {
		t.Fatalf("placed in domain %d, want 1", d)
	}
	// Domain 0's refusal left no cluster bookkeeping: its budget is the
	// direct launch only, so 12 keys remain there and 12 in domain 1.
	if got := c.Capacity(); got != 2*MaxUProcsPerDomain-2 {
		t.Fatalf("capacity = %d, want %d", got, 2*MaxUProcsPerDomain-2)
	}
}

// TestClusterLaunchBuildErrorNoBookkeeping: a build error is the caller's
// bug, not a capacity signal — the launch fails immediately with nothing
// recorded, and the name stays free.
func TestClusterLaunchBuildErrorNoBookkeeping(t *testing.T) {
	c, err := NewCluster(2, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	before := c.Capacity()
	broken := func(m *Manager) (*Program, error) {
		return nil, fmt.Errorf("bad program")
	}
	if _, err := c.Launch("app", broken, 0); err == nil {
		t.Fatal("build error not surfaced")
	}
	if _, ok := c.DomainOf("app"); ok {
		t.Fatal("failed launch left a placement record")
	}
	if got := c.Capacity(); got != before {
		t.Fatalf("capacity changed across a failed build: %d -> %d", before, got)
	}
	// The name is immediately reusable with a working program.
	if _, err := c.Launch("app", buildParkLoop, 0); err != nil {
		t.Fatal(err)
	}
}

// TestClusterStepFollowsOccupancy pins the Start/Step liveness fix: a
// domain populated directly through its manager must be started and
// stepped even though the cluster's own launch count for it is zero.
func TestClusterStepFollowsOccupancy(t *testing.T) {
	c, err := NewCluster(2, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	m1 := c.Manager(1)
	prog, err := buildParkLoop(m1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m1.Launch("direct", prog, 0); err != nil {
		t.Fatal(err)
	}
	if m1.Occupancy() != 1 || c.Manager(0).Occupancy() != 0 {
		t.Fatalf("occupancy = %d/%d", c.Manager(0).Occupancy(), m1.Occupancy())
	}
	if err := c.Start(0); err != nil {
		t.Fatal(err)
	}
	c.Step(0, 20_000)
	parks, _ := m1.Stats(0)
	if parks == 0 {
		t.Fatal("directly-launched uProcess never ran: Step skipped the occupied domain")
	}
}

// TestClusterDestroyDrainsLongGatedProgram pins the quiescence-driven
// drain: a program that runs thousands of instructions between gates
// outruns the old fixed 2000-step sweep, but Destroy must still land the
// kill and reap the region before returning.
func TestClusterDestroyDrainsLongGatedProgram(t *testing.T) {
	c, err := NewCluster(1, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	longGated := func(m *Manager) (*Program, error) {
		return m.NewProgram("long").Forever(func(b *ProgramBuilder) {
			b.Repeat(5000, func(b *ProgramBuilder) { b.Compute(1) })
			b.Park()
		}).Build()
	}
	if _, err := c.Launch("long", longGated, 0); err != nil {
		t.Fatal(err)
	}
	if err := c.Start(0); err != nil {
		t.Fatal(err)
	}
	c.Step(0, 100)
	if err := c.Destroy("long"); err != nil {
		t.Fatal(err)
	}
	// The kill landed and the region was reclaimed: full capacity is back.
	if got := c.Capacity(); got != MaxUProcsPerDomain {
		t.Fatalf("capacity = %d, want %d (zombie not reaped)", got, MaxUProcsPerDomain)
	}
}
