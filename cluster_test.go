package vessel

import (
	"fmt"
	"testing"
)

func buildParkLoop(m *Manager) (*Program, error) {
	return m.NewProgram("loop").Forever(func(b *ProgramBuilder) {
		b.Compute(500).Park()
	}).Build()
}

func TestClusterBeyondThirteenUProcesses(t *testing.T) {
	c, err := NewCluster(2, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if c.Domains() != 2 || c.Capacity() != 26 {
		t.Fatalf("domains=%d capacity=%d", c.Domains(), c.Capacity())
	}
	// 20 uProcesses exceed one domain's 13-key budget; the cluster
	// spills into the second domain.
	for i := 0; i < 20; i++ {
		name := fmt.Sprintf("app-%02d", i)
		if _, err := c.Launch(name, buildParkLoop, 0); err != nil {
			t.Fatalf("launch %s: %v", name, err)
		}
	}
	if c.Capacity() != 6 {
		t.Fatalf("capacity = %d, want 6", c.Capacity())
	}
	d0, _ := c.DomainOf("app-00")
	d13, ok := c.DomainOf("app-13")
	if !ok || d0 == d13 {
		t.Fatalf("app-13 should spill to another domain (d0=%d d13=%d)", d0, d13)
	}
	// Everything runs.
	if err := c.Start(0); err != nil {
		t.Fatal(err)
	}
	c.Step(0, 20_000)
	for i := 0; i < 2; i++ {
		parks, _ := c.Manager(i).Stats(0)
		if parks < 20 {
			t.Fatalf("domain %d parks = %d", i, parks)
		}
	}
	// Full cluster rejects the 27th.
	for i := 20; i < 26; i++ {
		if _, err := c.Launch(fmt.Sprintf("app-%02d", i), buildParkLoop, 0); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.Launch("overflow", buildParkLoop, 0); err == nil {
		t.Fatal("27th uProcess accepted")
	}
	// Destroy frees a slot.
	if err := c.Destroy("app-05"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Launch("replacement", buildParkLoop, 0); err != nil {
		t.Fatal(err)
	}
	if err := c.Destroy("missing"); err == nil {
		t.Fatal("destroy of unknown name accepted")
	}
	if _, err := c.Launch("app-00", buildParkLoop, 0); err == nil {
		t.Fatal("duplicate name accepted")
	}
	if _, err := NewCluster(0, 1, nil); err == nil {
		t.Fatal("zero domains accepted")
	}
}
