package vessel

import (
	"fmt"
	"strings"

	"vessel/internal/clustersched"
	"vessel/internal/cpu"
	"vessel/internal/faultinject"
	"vessel/internal/harness"
	"vessel/internal/obs"
	"vessel/internal/obs/journey"
	"vessel/internal/sched"
	"vessel/internal/sched/arachne"
	"vessel/internal/sched/caladan"
	"vessel/internal/sched/cfs"
	"vessel/internal/selfheal"
	"vessel/internal/sim"
	"vessel/internal/trace"
	"vessel/internal/uproc"
	ivessel "vessel/internal/vessel"
	"vessel/internal/workload"
)

// Core types of the performance-simulation API, re-exported from the
// internal packages so user code imports only this package.
type (
	// Config describes one simulated run: cores, duration, apps, costs.
	Config = sched.Config
	// Result is a run's outcome: per-app results and cycle breakdown.
	Result = sched.Result
	// AppResult is one application's throughput/latency outcome.
	AppResult = sched.AppResult
	// CycleBreakdown partitions machine time (app/runtime/kernel/switch/idle).
	CycleBreakdown = sched.CycleBreakdown
	// Scheduler runs a Config; implementations are VESSEL and baselines.
	Scheduler = sched.Scheduler
	// App is a latency-critical or best-effort application.
	App = workload.App
	// ServiceDist samples request service times.
	ServiceDist = workload.ServiceDist
	// Burst configures ON/OFF modulated arrivals.
	Burst = workload.Burst
	// CostModel holds every timing constant of the reproduction.
	CostModel = cpu.CostModel
	// Duration is virtual time in nanoseconds.
	Duration = sim.Duration
	// Time is a virtual-time instant.
	Time = sim.Time
	// LatencySummary is the Avg/P50/P90/P99/P999 report.
	LatencySummary = sched.AppResult
	// TraceRecorder captures per-core execution segments; set Config.Trace
	// to one and call Render for Figure 7-style timelines.
	TraceRecorder = trace.Recorder
	// Observer is the deterministic observability layer (span timelines,
	// cycle attribution, metrics registry); set Config.Obs to one built
	// with NewObserver, or attach it to a Manager with AttachObs.
	Observer = obs.Observer
	// JourneyTracer is the request-journey tracing layer (causal span
	// trees, critical-path attribution, flight recorder, SLO monitor);
	// set Config.Journey to one built with NewJourneyTracer, or attach
	// it to a Manager with AttachJourney.
	JourneyTracer = journey.Tracer
	// JourneyConfig configures a tracer built with NewJourneyTracerWith:
	// SLO target, 1-in-N request sampling, flight-recorder capacity.
	JourneyConfig = journey.Config
)

// NewObserver returns an enabled observability layer whose per-core span
// rings hold perCore spans each (≤ 0 selects the default capacity).
func NewObserver(perCore int) *Observer { return obs.New(perCore) }

// NewJourneyTracer returns an enabled request-journey tracer with
// default configuration (flight recorder on, SLO monitor off).
func NewJourneyTracer() *JourneyTracer { return journey.New() }

// NewJourneyTracerWith returns an enabled request-journey tracer with
// explicit configuration — notably Config.SampleEvery for production-style
// 1-in-N sampling, which bounds tracing overhead at high request rates.
func NewJourneyTracerWith(cfg JourneyConfig) *JourneyTracer { return journey.NewTracer(cfg) }

// Virtual-time units.
const (
	Nanosecond  = sim.Nanosecond
	Microsecond = sim.Microsecond
	Millisecond = sim.Millisecond
	Second      = sim.Second
)

// DefaultCosts returns the calibrated cost model (DESIGN.md §4). Clone it
// to sweep individual constants.
func DefaultCosts() *CostModel { return cpu.Default() }

// NewTraceRecorder returns a bounded timeline recorder keeping at most max
// segments (max ≤ 0 selects a generous default).
func NewTraceRecorder(max int) *TraceRecorder { return trace.NewRecorder(max) }

// VESSEL returns the paper's scheduler: one-level global scheduling with
// sub-microsecond userspace context switches.
func VESSEL() Scheduler { return ivessel.Simulator{} }

// Caladan returns the plain Caladan baseline.
func Caladan() Scheduler { return caladan.Simulator{Variant: caladan.Plain} }

// CaladanDRLow returns Caladan with Delay Range 0.5–1µs.
func CaladanDRLow() Scheduler { return caladan.Simulator{Variant: caladan.DRLow} }

// CaladanDRHigh returns Caladan with Delay Range 1–4µs.
func CaladanDRHigh() Scheduler { return caladan.Simulator{Variant: caladan.DRHigh} }

// Linux returns the CFS baseline (L-apps nice −19, B-apps nice 20).
func Linux() Scheduler { return cfs.Simulator{} }

// Arachne returns the Arachne core-arbiter baseline.
func Arachne() Scheduler { return arachne.Simulator{} }

// Schedulers returns every scheduler in the evaluation, VESSEL first.
func Schedulers() []Scheduler {
	return []Scheduler{VESSEL(), Caladan(), CaladanDRLow(), CaladanDRHigh(), Linux(), Arachne()}
}

// NewScheduler resolves a scheduler by name (case-insensitive): "vessel",
// "caladan", "caladan-dr-l", "caladan-dr-h", "linux", "arachne".
func NewScheduler(name string) (Scheduler, error) {
	switch strings.ToLower(name) {
	case "vessel":
		return VESSEL(), nil
	case "caladan":
		return Caladan(), nil
	case "caladan-dr-l", "dr-l":
		return CaladanDRLow(), nil
	case "caladan-dr-h", "dr-h":
		return CaladanDRHigh(), nil
	case "linux", "cfs":
		return Linux(), nil
	case "arachne":
		return Arachne(), nil
	default:
		return nil, fmt.Errorf("vessel: unknown scheduler %q", name)
	}
}

// NewMemcached builds the memcached/USR L-app (1µs mean service,
// Poisson arrivals) at the given offered load in requests/second.
func NewMemcached(ratePerSec float64) *App {
	return workload.NewLApp("memcached", workload.Memcached(), ratePerSec)
}

// NewSilo builds the Silo/TPC-C L-app (20µs median, 280µs P999).
func NewSilo(ratePerSec float64) *App {
	return workload.NewLApp("silo", workload.Silo(), ratePerSec)
}

// NewLApp builds a custom latency-critical app.
func NewLApp(name string, dist ServiceDist, ratePerSec float64) *App {
	return workload.NewLApp(name, dist, ratePerSec)
}

// NewLinpack builds the CPU-bound best-effort app.
func NewLinpack() *App { return workload.Linpack() }

// NewMembench builds the memory-intensive best-effort app.
func NewMembench() *App { return workload.Membench() }

// NewBApp builds a custom best-effort app with the given per-core
// bandwidth demand (GB/s) and memory-phase fraction.
func NewBApp(name string, bwDemandGBs, memFrac float64) *App {
	return workload.NewBApp(name, bwDemandGBs, memFrac)
}

// MemcachedDist returns the memcached/USR service distribution.
func MemcachedDist() ServiceDist { return workload.Memcached() }

// SiloDist returns the Silo/TPC-C service distribution.
func SiloDist() ServiceDist { return workload.Silo() }

// IdealCapacity returns the zero-overhead service capacity of the given
// core count for a service distribution, in requests/second — the
// normalization basis for "total normalized throughput".
func IdealCapacity(cores int, dist ServiceDist) float64 {
	return sched.IdealLCapacity(cores, dist)
}

// Run-harness types, re-exported so sweeps are composed entirely through
// this package: declare RunSpecs, gather them into a Plan, and execute on
// a deterministic parallel Executor with an optional content-addressed
// cache (DESIGN.md §11 "Run harness").
type (
	// RunSpec is the declarative, hashable description of one run.
	RunSpec = harness.RunSpec
	// AppSpec is a RunSpec's serializable application description.
	AppSpec = harness.AppSpec
	// BurstSpec is an AppSpec's ON/OFF arrival modulation.
	BurstSpec = harness.BurstSpec
	// Plan is an ordered list of RunSpecs; results always merge in plan
	// order, independent of execution order.
	Plan = harness.Plan
	// Axes composes a Plan from sweep dimensions.
	Axes = harness.Axes
	// Executor runs plans on a worker pool with byte-identical output at
	// any parallelism.
	Executor = harness.Executor
	// RunResult pairs a RunSpec with its result and cache provenance.
	RunResult = harness.RunResult
	// RunCache is the content-addressed result cache keyed by spec hash.
	RunCache = harness.Cache
)

// NewExecutor builds an executor with the given worker-pool width
// (≤ 0 selects DefaultParallel) backed by a content-addressed cache at
// cacheDir (empty disables caching).
func NewExecutor(parallel int, cacheDir string) (*Executor, error) {
	e := &Executor{Parallel: parallel}
	if cacheDir != "" {
		c, err := harness.OpenCache(cacheDir)
		if err != nil {
			return nil, err
		}
		e.Cache = c
	}
	return e, nil
}

// DefaultParallel is the default worker-pool width: the host's usable
// parallelism, never less than one.
func DefaultParallel() int { return harness.DefaultParallel() }

// SchedulerNames lists every scheduler the harness can resolve by name.
func SchedulerNames() []string { return harness.SchedulerNames() }

// Fault-injection and chaos-harness types, re-exported so chaos runs are
// driven entirely through this package (the robustness surface: see
// DESIGN.md "Fault model & chaos harness").
type (
	// FaultPlan declares a deterministic, seed-driven injection schedule.
	FaultPlan = faultinject.Plan
	// InjectedFault is one planned injection inside a FaultPlan.
	InjectedFault = faultinject.Fault
	// FaultKind enumerates the injectable failure modes.
	FaultKind = faultinject.Kind
	// Injector drives a FaultPlan against a running manager.
	Injector = faultinject.Injector
	// EventLog is the containment event stream — the determinism witness.
	EventLog = trace.EventLog
	// TraceEvent is one entry of an EventLog.
	TraceEvent = trace.Event
	// Watchdog is the per-uProcess cycle-budget policy.
	Watchdog = uproc.Watchdog
	// RestartPolicy caps supervised relaunches with exponential backoff.
	RestartPolicy = ivessel.RestartPolicy
	// ChaosConfig parameterises Manager.RunChaos.
	ChaosConfig = ivessel.ChaosConfig
	// ChaosReport summarises a chaos run.
	ChaosReport = ivessel.ChaosReport
)

// Injectable failure modes.
const (
	FaultWildWrite    = faultinject.WildWrite
	FaultGateCrash    = faultinject.GateCrash
	FaultRuntimeCrash = faultinject.RuntimeCrash
	FaultRunaway      = faultinject.Runaway
	FaultDropUintr    = faultinject.DropUintr
	FaultDelayUintr   = faultinject.DelayUintr
	FaultWedgeQueue   = faultinject.WedgeQueue
	FaultCoreStall    = faultinject.CoreStall
	FaultDomainCrash  = faultinject.DomainCrash
	FaultPolicyPanic  = faultinject.PolicyPanic
	FaultUintrStorm   = faultinject.UintrStorm
	FaultPkeyLeak     = faultinject.PkeyLeak
	FaultPkeyThrash   = faultinject.PkeyThrash
	// FaultClusterPolicyPanic attacks the cluster-scope scheduling policy
	// (the clustersched failsafe wrapper) the way FaultPolicyPanic attacks
	// a per-domain policy: the next cluster decision panics (or, with
	// Delay set, burns its cycle budget) and the failsafe swaps to static.
	FaultClusterPolicyPanic = faultinject.ClusterPolicyPanic
)

// Scheduling-policy seam and self-healing types (see DESIGN.md
// "Self-healing and failsafe policies").
type (
	// Policy decides preemption per core per round; plug one into
	// ChaosConfig.Policy or CoreScheduler.Policy.
	Policy = ivessel.Policy
	// PolicyView is what a Policy sees for one core each round.
	PolicyView = ivessel.PolicyView
	// PolicyDecision is a Policy's verdict, including its own decision cost.
	PolicyDecision = ivessel.PolicyDecision
	// RoundRobinPolicy is the minimal always-rotate policy — the failsafe
	// fallback and the chaos-run default.
	RoundRobinPolicy = ivessel.RoundRobinPolicy
	// FairSharePolicy preempts only when siblings are waiting — the
	// core-scheduler default.
	FairSharePolicy = ivessel.FairSharePolicy
	// DomainManager is the per-domain manager a SelfHealCluster hands to
	// worker build functions (programs are assembled against a specific
	// domain's call gates).
	DomainManager = ivessel.Manager
	// FailsafePolicy wraps a Policy with panic recovery and a per-decision
	// cycle budget, swapping atomically to round-robin on the first
	// violation.
	FailsafePolicy = selfheal.Failsafe
	// FailureDetector is the phi-accrual failure detector in virtual time.
	FailureDetector = selfheal.Detector
	// FailureDetectorConfig tunes the detector's threshold and gap floor.
	FailureDetectorConfig = selfheal.DetectorConfig
	// SelfHealConfig parameterises a self-healing cluster.
	SelfHealConfig = selfheal.Config
	// SelfHealCluster supervises domains end to end: failure detection,
	// core fencing, domain restart with state reconciliation, failsafe
	// policy fallback.
	SelfHealCluster = selfheal.Cluster
	// SelfHealReport summarises a self-healing run; its Canonical() bytes
	// are the determinism witness the chaos soak gates on.
	SelfHealReport = selfheal.Report
)

// NewFailureDetector builds a phi-accrual failure detector.
func NewFailureDetector(cfg FailureDetectorConfig) *FailureDetector {
	return selfheal.NewDetector(cfg)
}

// NewFailsafePolicy wraps primary (nil selects round-robin) with panic
// recovery and the given per-decision cycle budget (0 disables).
func NewFailsafePolicy(primary Policy, budgetCycles int64) *FailsafePolicy {
	return selfheal.NewFailsafe(primary, budgetCycles)
}

// NewSelfHealCluster builds a supervised multi-domain cluster.
func NewSelfHealCluster(cfg SelfHealConfig) (*SelfHealCluster, error) {
	return selfheal.New(cfg)
}

// Two-level cluster scheduling types (DESIGN.md §16): the ghOSt-style
// upper level proposing grant/revoke transactions over the NRK-style
// lower level's core-upcall mechanism.
type (
	// ClusterPolicy decides grant/revoke transactions from a ledger view;
	// implementations are fair-share, µs-latency, and static.
	ClusterPolicy = clustersched.Policy
	// ClusterPolicyView is the ledger snapshot a ClusterPolicy decides on.
	ClusterPolicyView = clustersched.View
	// ClusterTxn is one policy decision: moves committed in order.
	ClusterTxn = clustersched.Txn
	// ClusterFailsafe wraps a ClusterPolicy with panic recovery and a
	// per-decision cycle budget, swapping one-way to static on violation.
	ClusterFailsafe = clustersched.Failsafe
	// ClusterPolicySwap records one policy change (hot swap or failsafe
	// takeover).
	ClusterPolicySwap = clustersched.PolicySwap
	// ClusterSchedReport summarises a scheduled-cluster run; its
	// Canonical() bytes are the determinism witness clusterbench gates on.
	ClusterSchedReport = clustersched.Report
	// ClusterOp is one committed grant/revoke ledger operation — the
	// record the conformance oracle replays.
	ClusterOp = clustersched.Op
)

// ClusterPolicyNames lists the cluster policies resolvable by name.
func ClusterPolicyNames() []string { return clustersched.Names() }

// NewClusterPolicy resolves a cluster policy by name.
func NewClusterPolicy(name string) (ClusterPolicy, error) { return clustersched.NewNamed(name) }
